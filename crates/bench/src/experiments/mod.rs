//! One module per paper artifact.
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`table1`] | Table I — micro-service catalog |
//! | [`fig02`] | Fig. 2 — six resource counters vs workload (service D, 6 DCs) |
//! | [`fig03`] | Fig. 3 — (p5, p95) CPU scatter, mixed-hardware pool I |
//! | [`tree`] | §II-A2 — decision-tree pool classifier (splits, R², AUC) |
//! | [`fig04_05`] | Figs. 4–5 — datacenter-loss natural experiment |
//! | [`fig06`] | Fig. 6 — 4× surge latency-vs-workload trend |
//! | [`fig07`] | Fig. 7 — RSM iterations to the 14 ms QoS limit |
//! | [`pool_b`] | Table II + Figs. 8–9 — 30% reduction of pool B |
//! | [`pool_d`] | Table III + Figs. 10–11 — 10% reduction of pool D |
//! | [`table4`] | Table IV — per-service savings summary |
//! | [`fig12_13`] | Figs. 12–13 — fleet CPU distributions |
//! | [`fig14_15`] | Figs. 14–15 — availability distributions |
//! | [`fig16`] | Fig. 16 — offline A/B regression boxes |
//! | [`global`] | §III-B headline utilisation numbers |
//! | [`ablate`] | design-choice ablations + baseline planner comparison |
//! | [`online`] | streaming planner vs batch pipeline (headroom-online) |
//! | [`sweep`] | sharded sweep engine vs sequential planner at 81-pool scale |
//! | [`multi_resource`] | binding-constraint discovery on a mixed-resource fleet |
//! | [`colsim`] | columnar/streamed↔row snapshot-pipeline bit-identity gate |
//! | [`service`] | planner-as-a-service checkpoint/replay/reconcile gate |
//! | [`scenarios`] | adversarial-scenario scoring gate (flash crowd, failover, hypergrowth, …) |

pub mod ablate;
pub mod colsim;
pub mod fig02;
pub mod fig03;
pub mod fig04_05;
pub mod fig06;
pub mod fig07;
pub mod fig12_13;
pub mod fig14_15;
pub mod fig16;
pub mod global;
pub mod multi_resource;
pub mod online;
pub mod pool_b;
pub mod pool_d;
pub mod scenarios;
pub mod service;
pub mod sweep;
pub mod table1;
pub mod table4;
pub mod tree;

use std::error::Error;
use std::path::Path;

use crate::csv::CsvTable;
use crate::Scale;

/// Metadata for one runnable experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// CLI identifier.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Paper artifact reproduced.
    pub paper_ref: &'static str,
}

/// Every experiment, in paper order.
pub const ALL: [ExperimentInfo; 21] = [
    ExperimentInfo { id: "table1", title: "Micro-service catalog", paper_ref: "Table I" },
    ExperimentInfo { id: "fig2", title: "Resource counters vs workload", paper_ref: "Fig. 2" },
    ExperimentInfo { id: "fig3", title: "Per-server CPU scatter (pool I)", paper_ref: "Fig. 3" },
    ExperimentInfo { id: "tree", title: "Decision-tree pool classifier", paper_ref: "Sec. II-A2" },
    ExperimentInfo { id: "fig4", title: "DC-loss natural experiment", paper_ref: "Figs. 4-5" },
    ExperimentInfo { id: "fig6", title: "4x surge latency trend", paper_ref: "Fig. 6" },
    ExperimentInfo { id: "fig7", title: "RSM iterations to QoS limit", paper_ref: "Fig. 7" },
    ExperimentInfo {
        id: "table2",
        title: "Pool B 30% reduction",
        paper_ref: "Table II, Figs. 8-9",
    },
    ExperimentInfo {
        id: "table3",
        title: "Pool D 10% reduction",
        paper_ref: "Table III, Figs. 10-11",
    },
    ExperimentInfo { id: "table4", title: "Fleet savings summary", paper_ref: "Table IV" },
    ExperimentInfo { id: "fig12", title: "Fleet CPU distributions", paper_ref: "Figs. 12-13" },
    ExperimentInfo { id: "fig14", title: "Availability distributions", paper_ref: "Figs. 14-15" },
    ExperimentInfo {
        id: "fig16",
        title: "Offline A/B regression",
        paper_ref: "Fig. 16, Sec. III-C",
    },
    ExperimentInfo { id: "global", title: "Global utilisation headlines", paper_ref: "Sec. III-B" },
    ExperimentInfo {
        id: "ablate",
        title: "Ablations & baseline planners",
        paper_ref: "Secs. I, IV",
    },
    ExperimentInfo {
        id: "online",
        title: "Streaming planner vs batch pipeline",
        paper_ref: "headroom-online",
    },
    ExperimentInfo {
        id: "sweep",
        title: "Sharded sweep engine at 81-pool scale",
        paper_ref: "headroom-online",
    },
    ExperimentInfo {
        id: "multi_resource",
        title: "Binding-constraint discovery, mixed fleet",
        paper_ref: "Sec. II-A1",
    },
    ExperimentInfo {
        id: "colsim",
        title: "Columnar + streamed snapshot pipeline identity gate",
        paper_ref: "headroom-cluster",
    },
    ExperimentInfo {
        id: "service",
        title: "Planner-as-a-service checkpoint/replay/reconcile gate",
        paper_ref: "headroom-service",
    },
    ExperimentInfo {
        id: "scenarios",
        title: "Adversarial-scenario scoring gate",
        paper_ref: "Sec. II-B1",
    },
];

/// Whether `id` names a runnable experiment (any [`run_by_id`] arm,
/// including figure aliases like `fig8` for `table2`).
pub fn is_known_id(id: &str) -> bool {
    matches!(
        id,
        "table1"
            | "fig2"
            | "fig3"
            | "tree"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "table2"
            | "fig8"
            | "fig9"
            | "table3"
            | "fig10"
            | "fig11"
            | "table4"
            | "fig12"
            | "fig13"
            | "fig14"
            | "fig15"
            | "fig16"
            | "global"
            | "ablate"
            | "online"
            | "sweep"
            | "multi_resource"
            | "colsim"
            | "service"
            | "scenarios"
    )
}

/// Runs one experiment by id, printing its report and writing CSVs when
/// `out_dir` is given. Returns the rendered report.
///
/// # Errors
///
/// Unknown ids and experiment failures are returned as boxed errors.
pub fn run_by_id(
    id: &str,
    scale: &Scale,
    out_dir: Option<&Path>,
) -> Result<String, Box<dyn Error>> {
    let (report, tables): (String, Vec<CsvTable>) = match id {
        "table1" => {
            let r = table1::run();
            (r.to_string(), r.tables())
        }
        "fig2" => {
            let r = fig02::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig3" => {
            let r = fig03::run(scale)?;
            (r.to_string(), r.tables())
        }
        "tree" => {
            let r = tree::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig4" | "fig5" => {
            let r = fig04_05::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig6" => {
            let r = fig06::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig7" => {
            let r = fig07::run(scale)?;
            (r.to_string(), r.tables())
        }
        "table2" | "fig8" | "fig9" => {
            let r = pool_b::run(scale)?;
            (r.to_string(), r.tables())
        }
        "table3" | "fig10" | "fig11" => {
            let r = pool_d::run(scale)?;
            (r.to_string(), r.tables())
        }
        "table4" => {
            let r = table4::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig12" | "fig13" => {
            let r = fig12_13::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig14" | "fig15" => {
            let r = fig14_15::run(scale)?;
            (r.to_string(), r.tables())
        }
        "fig16" => {
            let r = fig16::run(scale)?;
            (r.to_string(), r.tables())
        }
        "global" => {
            let r = global::run(scale)?;
            (r.to_string(), r.tables())
        }
        "ablate" => {
            let r = ablate::run(scale)?;
            (r.to_string(), r.tables())
        }
        "online" => {
            let r = online::run(scale)?;
            (r.to_string(), r.tables())
        }
        "sweep" => {
            let r = sweep::run(scale)?;
            // The perf-trajectory artifact, checked in per PR: scaling grid
            // + steady-state allocation count, machine-readable. A
            // previously merged scenarios block is re-spliced into the
            // fresh artifact, so `repro sweep` and `repro scenarios` can
            // run in either order without dropping each other's blocks.
            let json_path = out_dir
                .map(|d| d.join("BENCH_sweep.json"))
                .unwrap_or_else(|| Path::new("BENCH_sweep.json").to_path_buf());
            let existing = std::fs::read_to_string(&json_path).ok();
            std::fs::write(
                &json_path,
                scenarios::preserve_scenarios_block(existing.as_deref(), &r.to_json()),
            )?;
            (format!("{r}[wrote {}]\n", json_path.display()), r.tables())
        }
        "multi_resource" => {
            let r = multi_resource::run(scale)?;
            (r.to_string(), r.tables())
        }
        "colsim" => {
            let r = colsim::run(scale)?;
            (r.to_string(), r.tables())
        }
        "service" => {
            let r = service::run(scale)?;
            (r.to_string(), r.tables())
        }
        "scenarios" => {
            let r = scenarios::run(scale)?;
            // Merge the per-scenario scorecards into the checked-in
            // BENCH_sweep.json artifact (run after `sweep`, which rewrites
            // the file; the splice is idempotent and order-independent
            // within the file).
            let json_path = out_dir
                .map(|d| d.join("BENCH_sweep.json"))
                .unwrap_or_else(|| Path::new("BENCH_sweep.json").to_path_buf());
            let existing = std::fs::read_to_string(&json_path).ok();
            std::fs::write(&json_path, scenarios::merge_into_sweep_json(existing.as_deref(), &r))?;
            (format!("{r}[merged into {}]\n", json_path.display()), r.tables())
        }
        other => return Err(format!("unknown experiment id: {other}").into()),
    };
    if let Some(dir) = out_dir {
        for t in &tables {
            t.write_to(dir)?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_are_unique() {
        let mut ids: Vec<&str> = ALL.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn unknown_id_errors() {
        assert!(run_by_id("nope", &Scale::quick(), None).is_err());
    }

    #[test]
    fn every_listed_id_is_known() {
        for e in &ALL {
            assert!(is_known_id(e.id), "{} listed but not runnable", e.id);
        }
        assert!(is_known_id("fig8") && is_known_id("fig15"), "aliases are known");
        assert!(!is_known_id("nope"));
    }
}
