//! Table I — the micro-service catalog.

use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_core::report::render_table;

use crate::csv::CsvTable;

/// The catalog rendered as Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Report {
    /// (service letter, description, servers/pool at paper scale).
    pub rows: Vec<(String, String, usize)>,
}

/// Renders Table I from the catalog.
pub fn run() -> Table1Report {
    Table1Report {
        rows: MicroserviceKind::TABLE1
            .iter()
            .map(|k| (k.to_string(), k.description().to_string(), k.spec().servers_per_pool))
            .collect(),
    }
}

impl Table1Report {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "table1_services".into(),
            headers: vec!["service".into(), "description".into(), "servers_per_pool".into()],
            rows: self
                .rows
                .iter()
                .map(|(s, d, n)| vec![s.clone(), d.clone(), n.to_string()])
                .collect(),
        }]
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: Description of micro-services running in server pools")?;
        let rows: Vec<Vec<String>> =
            self.rows.iter().map(|(s, d, n)| vec![s.clone(), d.clone(), n.to_string()]).collect();
        write!(f, "{}", render_table(&["Micro Service", "Description", "Servers/pool"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_seven_services() {
        let r = run();
        assert_eq!(r.rows.len(), 7);
        assert_eq!(r.rows[0].0, "A");
        assert!(r.rows[0].1.contains("MemCached"));
    }

    #[test]
    fn renders_and_exports() {
        let r = run();
        let text = r.to_string();
        assert!(text.contains("Table I"));
        assert!(text.contains("spelling"));
        assert_eq!(r.tables().len(), 1);
    }
}
