//! The shard-and-merge sweep engine at paper fleet scale.
//!
//! Not a paper artifact: this experiment validates the three contracts of
//! `headroom_online::sweep::SweepEngine`:
//!
//! 1. **determinism** — on the paper-shaped fleet (9 datacenters × 9
//!    services = 81 pools), the sharded sweep produces recommendations and
//!    assessments *identical* to the sequential planner, across seeds;
//! 2. **scaling** — a synthetic-fleet grid (8/81/512/4096/16384 pools ×
//!    1/2/4 threads × both snapshot layouts, persistent worker pool with
//!    scoped contrast cells) measures per-window cost: the spawn
//!    amortization, where `threads > 1` crosses below sequential, and the
//!    columnar-vs-row trajectory at fleet scale. A per-pass breakdown
//!    (single-thread columnar cells through
//!    `SweepEngine::enable_pass_timing`) records where the window goes —
//!    aggregate build, the four plane passes, the scalar estimator pass,
//!    and replanning. Full-scale release runs
//!    extend the grid with a 65536-pool row and the million-pool stretch
//!    window, and a regression guard fails the experiment when 16384-pool
//!    per-pool cost exceeds [`PER_POOL_RATIO_CEILING`]× the 512-pool
//!    figure;
//! 3. **zero steady-state allocation** — a warmed, non-replan window
//!    through `step_snapshot_partitioned` → `SweepEngine::sweep` must not
//!    touch the heap, and neither must the columnar twin
//!    (`step_columns_partitioned` → `observe_columns`). When the `repro`
//!    binary's counting allocator is installed, a nonzero count **fails
//!    the experiment** (and therefore CI); under plain `cargo test` the
//!    counter is inert and only the determinism/scaling contracts are
//!    exercised.
//!
//! On the 4096-pool persistent-vs-scoped inversion PR 4's grid recorded
//! (scoped 4.79 ms vs persistent 5.14 ms at 4 threads): profiling showed
//! it was not chunk geometry — chunks already scale as `pools / threads`
//! (now pinned by `headroom_exec::chunk_len`'s unit test) — but
//! measurement noise on top of a window cost dominated by the planner's
//! pointer-chasing treap, whose cache misses swamped the ~100 µs/window
//! exec-mode delta. With the treap replaced by the sorted totals column
//! and assessments written in place (PR 5), per-window cost at 4096 pools
//! dropped ~2.5× and the persistent pool measures at or below the scoped
//! shape again at every width; the grid keeps both cells so any
//! re-inversion stays visible.
//!
//! `repro sweep` also emits the machine-readable `BENCH_sweep.json`
//! (per-window ns by fleet size × thread count, plus the allocation
//! count), checked in per PR so the perf trajectory is tracked.
//!
//! Seeds are swept in parallel — each seed owns two simulations and two
//! engines on its own worker thread, so the harness itself exercises the
//! scenario-level parallelism the ROADMAP asked of the experiment suite.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use headroom_cluster::columns::ColumnarSnapshot;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{PartitionedSnapshot, RecordingPolicy, SnapshotLayout};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track;
use headroom_online::planner::{OnlinePlannerConfig, SweepExec};
use headroom_online::sweep::{SweepEngine, PASS_COUNT, PASS_NAMES};
use headroom_service::checkpoint;
use headroom_telemetry::time::WindowIndex;

use crate::csv::CsvTable;
use crate::synthetic::{
    synthetic_columns, synthetic_snapshots, synthetic_streamed, warmed_engine,
    warmed_engine_columns, warmed_engine_streamed, RecordedColumns, RecordedWindow,
    StreamedFixture,
};
use crate::Scale;

/// Fan-out width of the sharded engine under test.
pub const SHARDED_THREADS: usize = 4;

/// One seed's sequential-vs-sharded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeedRow {
    /// Seed driving both simulations.
    pub seed: u64,
    /// Whether assessments *and* recommendations matched exactly.
    pub identical: bool,
    /// Recommendations both engines emitted.
    pub recommendations: usize,
    /// Pools the engines planned.
    pub pools_planned: usize,
    /// Mean per-window planning cost, sequential engine.
    pub per_window_seq: Duration,
    /// Mean per-window planning cost, sharded engine.
    pub per_window_sharded: Duration,
}

/// One cell of the scaling grid: per-window planning cost for one
/// synthetic fleet size at one fan-out width, execution mode, and snapshot
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingCell {
    /// Pools in the synthetic fleet.
    pub pools: u32,
    /// Fan-out width.
    pub threads: usize,
    /// Execution mode: `"persistent"` (worker pool) or `"scoped"` (legacy
    /// spawn-per-window, measured for the amortization headline).
    pub exec: &'static str,
    /// Snapshot layout ingested: `"columns"` (the struct-of-arrays hot
    /// path) or `"rows"` (the legacy layout, kept measured for the A/B
    /// trajectory).
    pub path: &'static str,
    /// Per-window cost in nanoseconds: the fastest of `GRID_REPEATS`
    /// repeats, each the mean over enough warmed windows to hold total
    /// work per repeat constant across fleet sizes
    /// (`POOL_WINDOWS_PER_REPEAT` pool-windows — equal-length repeats keep
    /// min-of-N comparable between cells; see the constant's doc).
    /// Minimum-of-N, *not* a grand mean — interference only ever slows a
    /// run, so the minimum is the least-noisy estimator for a checked-in
    /// artifact.
    pub per_window_ns: u64,
}

/// Checkpoint cost at one fleet size: the serialized size of a warmed
/// engine's full-state checkpoint (`headroom_service::checkpoint`) and the
/// fastest-of-`GRID_REPEATS` restore latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCell {
    /// Pools in the synthetic fleet.
    pub pools: u32,
    /// Checkpoint size, bytes.
    pub bytes: usize,
    /// Fastest observed `checkpoint::load` latency, nanoseconds.
    pub restore_ns: u64,
}

/// The million-pool stretch measurement: steady-state window cost of the
/// slot-major store at 2^20 pools, one server per pool, single thread —
/// the materialised columnar path (comparable with the checked-in
/// trajectory) and its streamed tile-fused twin, whose per-pass breakdown
/// carries the `sim_kernel` pass the fused pipeline adds. Measured only at
/// full scale (release, not `--quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MillionPoolCell {
    /// Pools in the stretch fleet (2^20).
    pub pools: u32,
    /// Servers per pool (1 — the window cost is per-pool dominated).
    pub servers_per_pool: u32,
    /// Fastest-of-repeats mean per-window cost, nanoseconds (columns).
    pub per_window_ns: u64,
    /// Fastest-of-repeats mean per-window cost of the streamed path:
    /// kernel generation fused into the tile passes, metric columns never
    /// materialised.
    pub streamed_per_window_ns: u64,
    /// Per-pass breakdown of the streamed window (a separate timed run —
    /// the untimed repeats above carry no clock reads), indexed like
    /// [`PASS_NAMES`].
    pub streamed_pass_ns: [u64; PASS_COUNT],
}

/// Per-pass timing at one breakdown shape: the per-window nanoseconds each
/// plane-at-a-time pass of the sweep spent, measured single-thread (the
/// engine times only single-chunk windows, where the calling thread
/// observes every pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassBreakdownCell {
    /// Pools in the synthetic fleet.
    pub pools: u32,
    /// Fan-out width (always 1 — multi-chunk windows are untimed).
    pub threads: usize,
    /// Ingestion path timed: `"columns"` (materialised; the `sim_kernel`
    /// pass is structurally zero) or `"streamed"` (tile-fused kernel
    /// generation, `sim_kernel` broken out).
    pub path: &'static str,
    /// Per-window nanoseconds per pass, indexed like [`PASS_NAMES`]. The
    /// fastest-of-`GRID_REPEATS` repeat's whole array is recorded — one
    /// repeat's passes stay mutually consistent, whereas per-pass minima
    /// across repeats would fabricate a window no run produced.
    pub per_window_pass_ns: [u64; PASS_COUNT],
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Pools in the fleet.
    pub pools: usize,
    /// Servers in the fleet.
    pub servers: usize,
    /// Windows driven per seed.
    pub windows: u64,
    /// Fan-out width of the sharded engine.
    pub threads: usize,
    /// Per-seed rows.
    pub rows: Vec<SweepSeedRow>,
    /// Spawn-amortization grid: fleet size × thread count.
    pub scaling: Vec<ScalingCell>,
    /// Checkpoint size and restore latency at the identity (81) and
    /// fleet (4096) shapes — plus 16384 at full scale.
    pub checkpoint: Vec<CheckpointCell>,
    /// The million-pool window measurement, when run at full scale.
    pub million_pool: Option<MillionPoolCell>,
    /// Per-pass window-cost breakdown at the [`BREAKDOWN_POOLS`] shapes
    /// (debug builds keep the 4096 row only, like the scaling grid).
    pub pass_breakdown: Vec<PassBreakdownCell>,
    /// Heap allocations counted over the steady-state measurement windows
    /// of the row path (must be 0 when `alloc_tracking`).
    pub steady_state_allocs: u64,
    /// Heap allocations over the steady-state windows of the columnar path
    /// (must equally be 0 when `alloc_tracking`).
    pub columnar_steady_state_allocs: u64,
    /// Whether the counting allocator was installed (true under `repro`,
    /// false under plain `cargo test`, where the count is meaningless).
    pub alloc_tracking: bool,
    /// Logical cores of the host the artifact was measured on.
    pub host_cores: usize,
    /// Build profile the numbers were taken under (`release` / `debug`).
    pub build: &'static str,
    /// Run scale (`full` / `quick`) — quick and debug runs skip the
    /// extended rows, so the artifact records which kind produced it.
    pub run_scale: &'static str,
}

/// PR 4's checked-in per-window figure at 4096 pools, threads 1 (row
/// layout) — the pre-columnar baseline the pipeline's ≥1.5× per-window
/// acceptance bar is measured against.
///
/// Methodology caveat: PR 4 recorded a *single* 24-window mean, while the
/// current grid records the fastest of five such means, which on this
/// host's ±20% noise band can sit 10–20% below a comparable single
/// sample. The derived speedup is therefore an upper-ish estimate; even
/// the noisiest observed runs (single samples right after heavy load)
/// still measured ≥2×, so the ≥1.5× bar clears under either methodology.
pub const BASELINE_PR4_4096X1_NS: u64 = 5_252_105;

/// PR 6's checked-in checkpoint size at 4096 pools — the per-shard-buffer
/// encoding the slot-major plane store's checkpoint is compared against.
pub const CHECKPOINT_BASELINE_PR6_BYTES_4096: usize = 23_847_105;

/// Ceiling on the 16384-pool per-pool window cost relative to the
/// 512-pool figure. The slot-major store's contract is near-flat per-pool
/// cost past cache capacity; a regression re-introducing per-shard pointer
/// chasing trips this guard and fails the experiment. PR 6 measured ~2.4×
/// here; the plane store landed at ~1.3× (DRAM-latency tax from the ~8
/// access streams the fused per-pool observe interleaved), and the
/// pass-structured window kernels — one plane at a time over the whole
/// lane range, with a cache-resident inter-pass scratch, tile-local
/// replanning, and a single fused scalar+replan walk over the shard
/// array — brought the measured ratio down to ~1.05× (essentially flat).
/// The ceiling keeps margin over run-to-run host noise while still
/// catching a slide back toward the fused per-pool figure.
pub const PER_POOL_RATIO_CEILING: f64 = 1.35;

impl SweepReport {
    /// Whether every seed matched bit-for-bit.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Mean sequential-over-sharded per-window cost ratio (> 1 means the
    /// fan-out won).
    pub fn speedup(&self) -> f64 {
        let (mut seq, mut sharded) = (0.0, 0.0);
        for r in &self.rows {
            seq += r.per_window_seq.as_secs_f64();
            sharded += r.per_window_sharded.as_secs_f64();
        }
        if sharded <= 0.0 {
            f64::INFINITY
        } else {
            seq / sharded
        }
    }
}

fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    // Per-pool QoS from the service catalog, as the batch fleet experiments
    // derive it.
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

fn run_seed(seed: u64, fraction: f64, windows: u64) -> SweepSeedRow {
    let drive = |threads: usize| {
        let scenario = FleetScenario::paper_scale(seed, fraction)
            .with_recording(RecordingPolicy::SnapshotOnly);
        let config = OnlinePlannerConfig {
            window_capacity: windows as usize,
            min_fit_windows: 180.min(windows as usize / 2),
            threads,
            ..OnlinePlannerConfig::default()
        };
        let mut sim = scenario.into_simulation();
        let mut engine = engine_for(sim.fleet(), config);
        let mut recs = Vec::new();
        let mut spent = Duration::ZERO;
        for _ in 0..windows {
            let snap = sim.step_snapshot_partitioned();
            let t = Instant::now();
            engine.observe_partitioned(&snap);
            spent += t.elapsed();
            recs.extend(engine.drain_recommendations());
        }
        (engine, recs, spent / windows.max(1) as u32)
    };
    let (seq_engine, seq_recs, per_window_seq) = drive(1);
    let (sharded_engine, sharded_recs, per_window_sharded) = drive(SHARDED_THREADS);
    let identical =
        seq_engine.assessments() == sharded_engine.assessments() && seq_recs == sharded_recs;
    SweepSeedRow {
        seed,
        identical,
        recommendations: seq_recs.len(),
        pools_planned: seq_engine.assessments().len(),
        per_window_seq,
        per_window_sharded,
    }
}

/// Fleet sizes of the scaling grid. 16384 entered with the columnar
/// pipeline: the ROADMAP's 100k-server shapes need per-pool cost to stay
/// flat well past cache capacity, so the grid must keep measuring it.
pub const SCALING_POOLS: [u32; 5] = [8, 81, 512, 4096, 16384];
/// The extended grid row, measured only at full scale (release `repro`
/// without `--quick`): single-thread persistent cells at both layouts,
/// one order past the always-measured 16384.
pub const EXTENDED_POOLS: u32 = 65_536;
/// The million-pool stretch fleet: 2^20 pools, one server each.
pub const MILLION_POOLS: u32 = 1_048_576;
/// Fan-out widths of the scaling grid.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];
/// Ingestion paths of the scaling grid: the materialised columnar path,
/// the legacy row layout it is A/B'd against, and the streamed tile-fused
/// path (kernel generation inside the sweep — the closed-loop default).
pub const SCALING_PATHS: [&str; 3] = ["columns", "rows", "streamed"];

const GRID_WARM_WINDOWS: u64 = 72;
const GRID_MEASURE_WINDOWS: u64 = 24;
/// Timing repeats per cell; the cell records the fastest repeat. A single
/// 24-window sample on a busy host carries ±20% scheduler/frequency noise
/// — enough to invert adjacent cells spuriously (PR 4's 4096-pool
/// "scoped beats persistent" inversion was exactly such an artifact).
/// Minimum-of-N is the standard cure: interference only ever slows a run.
const GRID_REPEATS: u32 = 5;
/// Work per timing repeat, in pool-windows: every cell measures the same
/// total work per repeat ([`measure_windows`] scales the window count
/// down as fleets grow, floored at [`GRID_MEASURE_WINDOWS`]). With a
/// fixed window count instead, a small fleet's repeat spans a few ms of
/// wall-clock — short enough for one of five repeats to land in a quiet
/// scheduler slot — while a 16384-pool repeat spans ~200 ms and averages
/// over every noise burst; min-of-N is then biased *down* for small cells
/// and *up* for large ones, and the per-pool scaling ratio the guard
/// checks inflates with host noise rather than planner cost. Equal work
/// per repeat removes that asymmetry.
const POOL_WINDOWS_PER_REPEAT: u64 = 16_384 * GRID_MEASURE_WINDOWS;

/// Windows per timing repeat at one fleet size (see
/// [`POOL_WINDOWS_PER_REPEAT`]). Debug builds (the `cargo test` path)
/// keep the flat [`GRID_MEASURE_WINDOWS`] — their numbers never become
/// the artifact, and unoptimized equal-work repeats would take minutes.
fn measure_windows(pools: u32) -> u64 {
    if cfg!(debug_assertions) {
        GRID_MEASURE_WINDOWS
    } else {
        (POOL_WINDOWS_PER_REPEAT / u64::from(pools)).max(GRID_MEASURE_WINDOWS)
    }
}

/// Measures one grid cell: the fastest-of-[`GRID_REPEATS`] warmed
/// per-window cost of one (fleet size, width, exec mode, layout)
/// combination (each repeat averages [`measure_windows`] windows — equal
/// work per repeat at every fleet size).
fn measure_cell(
    snapshots: &[RecordedWindow],
    columns: &[RecordedColumns],
    streamed: &StreamedFixture,
    pools: u32,
    threads: usize,
    exec: SweepExec,
    path: &'static str,
) -> ScalingCell {
    let config = OnlinePlannerConfig {
        window_capacity: 48,
        min_fit_windows: 24,
        threads,
        exec,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = match path {
        "columns" => warmed_engine_columns(columns, config),
        "streamed" => warmed_engine_streamed(streamed, config),
        _ => warmed_engine(snapshots, config),
    };
    let mut next_window = GRID_WARM_WINDOWS;
    let mut per_window_ns = u64::MAX;
    let windows = measure_windows(pools);
    for _ in 0..GRID_REPEATS {
        let t = Instant::now();
        for _ in 0..windows {
            let window = WindowIndex(next_window);
            let recorded = (next_window % GRID_WARM_WINDOWS) as usize;
            match path {
                "columns" => {
                    let (cols, slices) = &columns[recorded];
                    engine.observe_columns(&headroom_cluster::columns::ColumnarSnapshot {
                        window,
                        columns: cols,
                        pools: slices,
                    });
                }
                "streamed" => {
                    engine.observe_streamed(&streamed.window(recorded, window));
                }
                _ => {
                    let (rows, slices) = &snapshots[recorded];
                    engine.observe_partitioned(&PartitionedSnapshot {
                        window,
                        rows,
                        pools: slices,
                    });
                }
            }
            engine.drain_recommendations();
            next_window += 1;
        }
        per_window_ns = per_window_ns.min((t.elapsed().as_nanos() / windows as u128) as u64);
    }
    let exec = match exec {
        SweepExec::Persistent => "persistent",
        SweepExec::Scoped => "scoped",
    };
    ScalingCell { pools, threads, exec, path, per_window_ns }
}

/// Fleet sizes the checkpoint cost is measured at: the paper-shaped
/// identity fleet and the largest always-measured grid shape.
pub const CHECKPOINT_POOLS: [u32; 2] = [81, 4096];
/// The extended checkpoint shape, measured only at full scale.
pub const EXTENDED_CHECKPOINT_POOLS: u32 = 16_384;

/// Measures checkpoint size and restore latency of a warmed engine at the
/// [`CHECKPOINT_POOLS`] shapes (plus [`EXTENDED_CHECKPOINT_POOLS`] at full
/// scale), on the same synthetic fixture and planner config as the scaling
/// grid so the numbers describe the same engines.
fn measure_checkpoints(full: bool) -> Vec<CheckpointCell> {
    let mut shapes: Vec<u32> = CHECKPOINT_POOLS.to_vec();
    if full {
        shapes.push(EXTENDED_CHECKPOINT_POOLS);
    }
    shapes
        .iter()
        .map(|&pools| {
            let snapshots = synthetic_snapshots(pools, 3, GRID_WARM_WINDOWS);
            let config = OnlinePlannerConfig {
                window_capacity: 48,
                min_fit_windows: 24,
                ..OnlinePlannerConfig::default()
            };
            let engine = warmed_engine(&snapshots, config);
            let bytes = checkpoint::save(&engine);
            let mut restore_ns = u64::MAX;
            for _ in 0..GRID_REPEATS {
                let t = Instant::now();
                let restored = checkpoint::load(&bytes).expect("own checkpoint loads");
                restore_ns = restore_ns.min(t.elapsed().as_nanos() as u64);
                drop(restored);
            }
            CheckpointCell { pools, bytes: bytes.len(), restore_ns }
        })
        .collect()
}

/// Measures the scaling grid: persistent workers at every fleet size ×
/// thread count × snapshot layout, plus the legacy scoped shape at
/// `threads > 1` so the removed spawn cost stays visible (and tracked) per
/// PR.
///
/// Deliberately *not* scaled by `--quick`: the grid is the checked-in
/// `BENCH_sweep.json` artifact, and cross-PR comparability requires every
/// run to measure the same fleet sizes. It is sized to stay in low seconds
/// per cell even at 16384 pools. `full` (release `repro` without
/// `--quick`) additionally measures the [`EXTENDED_POOLS`] row:
/// single-thread persistent cells at both layouts, recorded in the
/// artifact but outside the cross-thread grid.
fn measure_scaling(full: bool) -> Vec<ScalingCell> {
    // Debug builds (the `cargo test` path) skip the 16384-pool row — it
    // costs ~45 s unoptimized and proves nothing the 4096-pool row does
    // not. The checked-in artifact is always produced by the release
    // `repro` binary, which measures the full grid.
    let measured: &[u32] =
        if cfg!(debug_assertions) { &SCALING_POOLS[..4] } else { &SCALING_POOLS };
    let mut cells = Vec::new();
    for &pools in measured {
        let snapshots = synthetic_snapshots(pools, 3, GRID_WARM_WINDOWS);
        let columns = synthetic_columns(&snapshots);
        let streamed = synthetic_streamed(&columns);
        for &path in &SCALING_PATHS {
            for &threads in &SCALING_THREADS {
                cells.push(measure_cell(
                    &snapshots,
                    &columns,
                    &streamed,
                    pools,
                    threads,
                    SweepExec::Persistent,
                    path,
                ));
                if threads > 1 {
                    cells.push(measure_cell(
                        &snapshots,
                        &columns,
                        &streamed,
                        pools,
                        threads,
                        SweepExec::Scoped,
                        path,
                    ));
                }
            }
        }
    }
    if full {
        let snapshots = synthetic_snapshots(EXTENDED_POOLS, 3, GRID_WARM_WINDOWS);
        let columns = synthetic_columns(&snapshots);
        let streamed = synthetic_streamed(&columns);
        for &path in &SCALING_PATHS {
            cells.push(measure_cell(
                &snapshots,
                &columns,
                &streamed,
                EXTENDED_POOLS,
                1,
                SweepExec::Persistent,
                path,
            ));
        }
    }
    cells
}

/// Fleet sizes the per-pass breakdown is measured at: both ends of the
/// per-pool scaling guard (512 and 16384) plus the fleet shape, so a
/// guard trip attributes to the exact pass that stopped scaling. Debug
/// builds (the `cargo test` path) keep the 4096 row only, matching the
/// scaling grid's economy; the checked-in artifact carries all three.
pub const BREAKDOWN_POOLS: [u32; 3] = [4096, 512, 16384];

/// Measures the per-pass window-cost breakdown: single-thread cells at the
/// [`BREAKDOWN_POOLS`] shapes with [`SweepEngine::enable_pass_timing`] on
/// — the materialised columnar path and its streamed tile-fused twin —
/// same fixture and planner config as the scaling grid so the pass sums
/// line up with the grid's single-thread cells (modulo the timer's own
/// `Instant` reads).
fn measure_pass_breakdown() -> Vec<PassBreakdownCell> {
    let measured: &[u32] =
        if cfg!(debug_assertions) { &BREAKDOWN_POOLS[..1] } else { &BREAKDOWN_POOLS };
    let mut cells = Vec::new();
    for &pools in measured {
        let snapshots = synthetic_snapshots(pools, 3, GRID_WARM_WINDOWS);
        let columns = synthetic_columns(&snapshots);
        let streamed = synthetic_streamed(&columns);
        let config = OnlinePlannerConfig {
            window_capacity: 48,
            min_fit_windows: 24,
            threads: 1,
            ..OnlinePlannerConfig::default()
        };
        for path in ["columns", "streamed"] {
            let columnar = path == "columns";
            let mut engine = if columnar {
                warmed_engine_columns(&columns, config)
            } else {
                warmed_engine_streamed(&streamed, config)
            };
            let mut next_window = GRID_WARM_WINDOWS;
            let mut best_total = u64::MAX;
            let mut best = [0u64; PASS_COUNT];
            let windows = measure_windows(pools);
            for _ in 0..GRID_REPEATS {
                engine.enable_pass_timing();
                for _ in 0..windows {
                    let recorded = (next_window % GRID_WARM_WINDOWS) as usize;
                    let window = WindowIndex(next_window);
                    if columnar {
                        let (cols, slices) = &columns[recorded];
                        engine.observe_columns(&ColumnarSnapshot {
                            window,
                            columns: cols,
                            pools: slices,
                        });
                    } else {
                        engine.observe_streamed(&streamed.window(recorded, window));
                    }
                    engine.drain_recommendations();
                    next_window += 1;
                }
                let mut pass_ns = engine.pass_ns();
                for ns in &mut pass_ns {
                    *ns /= windows;
                }
                let total: u64 = pass_ns.iter().sum();
                if total < best_total {
                    best_total = total;
                    best = pass_ns;
                }
            }
            cells.push(PassBreakdownCell { pools, threads: 1, path, per_window_pass_ns: best });
        }
    }
    cells
}

/// Recorded windows of the million-pool fixture; the drive cycles them.
const MILLION_RECORDED_WINDOWS: u64 = 12;
/// Warm-up windows at the million-pool shape. Must exceed every ring
/// capacity — the 24-slot aggregate window *and* the 90-slot drift
/// sub-window — so each slot-major plane is fully first-touched before
/// timing starts; at 16 B × 2^20 lanes per drift slot, a cold slot costs
/// ~16 MiB of page faults per window, which is measurement noise, not
/// window cost. 120 also fills the fits and has replans behind it.
const MILLION_WARM_WINDOWS: u64 = 120;
/// Measured windows per repeat at the million-pool shape.
const MILLION_MEASURE_WINDOWS: u64 = 8;
/// Timing repeats at the million-pool shape (each repeat is seconds, so
/// fewer than [`GRID_REPEATS`]). Four repeats spread the min over ~20 s
/// per path, so a transient host-contention burst cannot inflate the
/// recorded trajectory figure the way it could with two.
const MILLION_REPEATS: u32 = 4;

/// Measures the million-pool stretch window: 2^20 pools × 1 server,
/// single thread, a shorter 24-slot window so the fixture stays in memory
/// — first the materialised columnar path (the checked-in trajectory),
/// then the streamed tile-fused twin on the same workload stream, with a
/// final timed run recording the streamed per-pass breakdown (`sim_kernel`
/// broken out). Full scale only — the fixture alone is ~2 GiB and a
/// debug-build window takes minutes.
fn measure_million(full: bool) -> Option<MillionPoolCell> {
    if !full {
        return None;
    }
    let snapshots = synthetic_snapshots(MILLION_POOLS, 1, MILLION_RECORDED_WINDOWS);
    let columns = synthetic_columns(&snapshots);
    drop(snapshots);
    let config = OnlinePlannerConfig {
        window_capacity: 24,
        min_fit_windows: 12,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    let mut next_window = 0u64;
    let mut drive = |engine: &mut SweepEngine, windows: u64| {
        for _ in 0..windows {
            let (cols, slices) = &columns[(next_window % MILLION_RECORDED_WINDOWS) as usize];
            engine.observe_columns(&ColumnarSnapshot {
                window: WindowIndex(next_window),
                columns: cols,
                pools: slices,
            });
            engine.drain_recommendations();
            next_window += 1;
        }
    };
    drive(&mut engine, MILLION_WARM_WINDOWS);
    let mut per_window_ns = u64::MAX;
    for _ in 0..MILLION_REPEATS {
        let t = Instant::now();
        drive(&mut engine, MILLION_MEASURE_WINDOWS);
        per_window_ns =
            per_window_ns.min((t.elapsed().as_nanos() / MILLION_MEASURE_WINDOWS as u128) as u64);
    }
    drop(engine);
    // The streamed twin: same workload stream (the fixture copies each
    // window's RPS column, online bitmask, and partition), metric columns
    // generated tile-at-a-time inside the sweep instead of replayed.
    let streamed = synthetic_streamed(&columns);
    drop(columns);
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    let mut next_window = 0u64;
    let mut drive = |engine: &mut SweepEngine, windows: u64| {
        for _ in 0..windows {
            let recorded = (next_window % MILLION_RECORDED_WINDOWS) as usize;
            engine.observe_streamed(&streamed.window(recorded, WindowIndex(next_window)));
            engine.drain_recommendations();
            next_window += 1;
        }
    };
    drive(&mut engine, MILLION_WARM_WINDOWS);
    let mut streamed_per_window_ns = u64::MAX;
    for _ in 0..MILLION_REPEATS {
        let t = Instant::now();
        drive(&mut engine, MILLION_MEASURE_WINDOWS);
        streamed_per_window_ns = streamed_per_window_ns
            .min((t.elapsed().as_nanos() / MILLION_MEASURE_WINDOWS as u128) as u64);
    }
    // Pass attribution from one further timed span; the untimed repeats
    // above stay free of the timer's per-pool clock reads.
    engine.enable_pass_timing();
    drive(&mut engine, MILLION_MEASURE_WINDOWS);
    let mut streamed_pass_ns = engine.pass_ns();
    for ns in &mut streamed_pass_ns {
        *ns /= MILLION_MEASURE_WINDOWS;
    }
    Some(MillionPoolCell {
        pools: MILLION_POOLS,
        servers_per_pool: 1,
        per_window_ns,
        streamed_per_window_ns,
        streamed_pass_ns,
    })
}

/// Runs the sequential-vs-sharded identity comparison over three seeds in
/// parallel, then the spawn-amortization grid and the steady-state
/// allocation count.
///
/// # Errors
///
/// Propagates worker panics, fails outright when any seed's sharded run
/// diverges from the sequential one, and — when the counting allocator is
/// installed (the `repro` binary) — fails when a warmed non-replan window
/// allocated. These are acceptance criteria, so a CI smoke run must go
/// red, not print a sad table and exit 0.
pub fn run(scale: &Scale) -> Result<SweepReport, Box<dyn Error>> {
    let windows = scale.observe_windows();
    let fraction = scale.fleet_fraction;
    let probe = FleetScenario::paper_scale(scale.seed, fraction);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    let seeds: Vec<u64> = (0..3).map(|i| scale.seed + i).collect();
    let rows: Vec<SweepSeedRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || run_seed(seed, fraction, windows)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Result<Vec<_>, _>>()
    })
    .map_err(|_| "sweep seed worker panicked")?;

    // Extended rows (65536 pools, the million-pool window) are release +
    // full-scale only: they exist for the checked-in artifact, and a debug
    // or --quick run would spend minutes proving nothing new.
    let full = !cfg!(debug_assertions) && !scale.is_quick();
    let scaling = measure_scaling(full);
    let checkpoint = measure_checkpoints(full);
    let million_pool = measure_million(full);
    let pass_breakdown = measure_pass_breakdown();
    let alloc_tracking = alloc_track::is_tracking();
    // Both layouts measured on the one shared fixture (crate::alloc_fixture)
    // so the two counts always describe the same workload. The streamed
    // layout's count lives in the colsim gate alongside the other streamed
    // identity contracts.
    let steady_state_allocs =
        crate::alloc_fixture::measure_steady_state_allocs(2, SnapshotLayout::Rows);
    let columnar_steady_state_allocs =
        crate::alloc_fixture::measure_steady_state_allocs(2, SnapshotLayout::Columnar);
    let report = SweepReport {
        pools,
        servers,
        windows,
        threads: SHARDED_THREADS,
        rows,
        scaling,
        checkpoint,
        million_pool,
        pass_breakdown,
        steady_state_allocs,
        columnar_steady_state_allocs,
        alloc_tracking,
        host_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        build: if cfg!(debug_assertions) { "debug" } else { "release" },
        run_scale: if scale.is_quick() { "quick" } else { "full" },
    };
    if !report.all_identical() {
        return Err(format!("sharded sweep diverged from the sequential planner:\n{report}").into());
    }
    // Scaling-regression guard: per-pool cost must stay near-flat from 512
    // to 16384 pools — the slot-major store's contract, enforced on the
    // materialised columnar path and the streamed tile-fused path alike.
    // Only enforceable when the 16384 row was measured (release builds).
    for path in ["columns", "streamed"] {
        if let (Some(small), Some(large)) =
            (report.cell(512, 1, "persistent", path), report.cell(16384, 1, "persistent", path))
        {
            let small_pp = small as f64 / 512.0;
            let large_pp = large as f64 / 16384.0;
            if large_pp > PER_POOL_RATIO_CEILING * small_pp {
                return Err(format!(
                    "per-pool scaling regression ({path} path): {large_pp:.0} ns/pool at 16384 \
                     pools exceeds {PER_POOL_RATIO_CEILING}x the 512-pool figure ({small_pp:.0} \
                     ns/pool):\n{report}"
                )
                .into());
            }
        }
    }
    if alloc_tracking && steady_state_allocs + columnar_steady_state_allocs > 0 {
        return Err(format!(
            "steady-state window path allocated (rows {steady_state_allocs}, columns \
             {columnar_steady_state_allocs}) — the zero-allocation contract is broken:\n{report}"
        )
        .into());
    }
    Ok(report)
}

impl SweepReport {
    /// CSV export of the comparison and the scaling grid.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "sweep_engine".into(),
                headers: vec![
                    "seed".into(),
                    "identical".into(),
                    "pools_planned".into(),
                    "recommendations".into(),
                    "per_window_seq_us".into(),
                    "per_window_sharded_us".into(),
                ],
                rows: self
                    .rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.seed.to_string(),
                            r.identical.to_string(),
                            r.pools_planned.to_string(),
                            r.recommendations.to_string(),
                            format!("{:.1}", r.per_window_seq.as_secs_f64() * 1e6),
                            format!("{:.1}", r.per_window_sharded.as_secs_f64() * 1e6),
                        ]
                    })
                    .collect(),
            },
            CsvTable {
                name: "sweep_scaling".into(),
                headers: vec![
                    "pools".into(),
                    "threads".into(),
                    "exec".into(),
                    "path".into(),
                    "per_window_ns".into(),
                ],
                rows: self
                    .scaling
                    .iter()
                    .map(|c| {
                        vec![
                            c.pools.to_string(),
                            c.threads.to_string(),
                            c.exec.to_string(),
                            c.path.to_string(),
                            c.per_window_ns.to_string(),
                        ]
                    })
                    .collect(),
            },
            CsvTable {
                name: "sweep_pass_breakdown".into(),
                headers: vec![
                    "pools".into(),
                    "threads".into(),
                    "path".into(),
                    "pass".into(),
                    "per_window_ns".into(),
                ],
                rows: self
                    .pass_breakdown
                    .iter()
                    .flat_map(|c| {
                        PASS_NAMES.iter().zip(c.per_window_pass_ns).map(move |(name, ns)| {
                            vec![
                                c.pools.to_string(),
                                c.threads.to_string(),
                                c.path.to_string(),
                                (*name).to_string(),
                                ns.to_string(),
                            ]
                        })
                    })
                    .collect(),
            },
            CsvTable {
                name: "sweep_checkpoint".into(),
                headers: vec!["pools".into(), "bytes".into(), "restore_ns".into()],
                rows: self
                    .checkpoint
                    .iter()
                    .map(|c| {
                        vec![c.pools.to_string(), c.bytes.to_string(), c.restore_ns.to_string()]
                    })
                    .collect(),
            },
        ]
    }

    /// The per-window cost of one grid cell, if measured.
    pub fn cell(&self, pools: u32, threads: usize, exec: &str, path: &str) -> Option<u64> {
        self.scaling
            .iter()
            .find(|c| c.pools == pools && c.threads == threads && c.exec == exec && c.path == path)
            .map(|c| c.per_window_ns)
    }

    /// The measured per-window speedup of the columnar pipeline at the
    /// 4096-pool, single-thread shape against PR 4's checked-in row-path
    /// figure ([`BASELINE_PR4_4096X1_NS`]) — the headline acceptance
    /// number.
    pub fn speedup_vs_baseline_4096(&self) -> Option<f64> {
        self.cell(4096, 1, "persistent", "columns")
            .filter(|&ns| ns > 0)
            .map(|ns| BASELINE_PR4_4096X1_NS as f64 / ns as f64)
    }

    /// The machine-readable `BENCH_sweep.json` payload: the scaling grid
    /// (fleet size × threads × exec × snapshot layout) plus the
    /// steady-state allocation counts of both layouts and the colsim
    /// headline fields, checked in per PR so the perf trajectory is
    /// diffable. All values are numbers/booleans/fixed strings, so the
    /// formatting needs no escaping.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"experiment\": \"sweep\",\n");
        // Host context: grid numbers are only comparable across artifacts
        // measured under the same profile and scale on similar hardware.
        s.push_str(&format!(
            "  \"host\": {{\"cores\": {}, \"build\": \"{}\", \"scale\": \"{}\"}},\n",
            self.host_cores, self.build, self.run_scale
        ));
        s.push_str(&format!("  \"identity_pools\": {},\n", self.pools));
        s.push_str(&format!("  \"identity_threads\": {},\n", self.threads));
        s.push_str(&format!("  \"identical\": {},\n", self.all_identical()));
        s.push_str(&format!("  \"alloc_tracking\": {},\n", self.alloc_tracking));
        s.push_str(&format!("  \"steady_state_allocations\": {},\n", self.steady_state_allocs));
        s.push_str("  \"colsim\": {\n");
        s.push_str(&format!(
            "    \"columnar_steady_state_allocations\": {},\n",
            self.columnar_steady_state_allocs
        ));
        s.push_str(&format!(
            "    \"baseline_pr4_per_window_ns_4096x1\": {BASELINE_PR4_4096X1_NS},\n"
        ));
        s.push_str(&format!(
            "    \"speedup_vs_baseline_4096x1\": {:.2}\n",
            self.speedup_vs_baseline_4096().unwrap_or(0.0)
        ));
        s.push_str("  },\n");
        if let Some(m) = &self.million_pool {
            s.push_str(&format!(
                "  \"million_pool\": {{\"pools\": {}, \"servers_per_pool\": {}, \
                 \"per_window_ns\": {}, \"streamed_per_window_ns\": {}, \
                 \"streamed_pass_ns\": {{",
                m.pools, m.servers_per_pool, m.per_window_ns, m.streamed_per_window_ns
            ));
            for (j, (name, ns)) in PASS_NAMES.iter().zip(m.streamed_pass_ns).enumerate() {
                s.push_str(&format!(
                    "\"{name}\": {ns}{}",
                    if j + 1 < PASS_COUNT { ", " } else { "" }
                ));
            }
            s.push_str("}},\n");
        }
        s.push_str(&format!(
            "  \"checkpoint_baseline_pr6_bytes_4096\": {CHECKPOINT_BASELINE_PR6_BYTES_4096},\n"
        ));
        s.push_str("  \"checkpoint\": [\n");
        for (i, c) in self.checkpoint.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pools\": {}, \"bytes\": {}, \"restore_ns\": {}}}{}\n",
                c.pools,
                c.bytes,
                c.restore_ns,
                if i + 1 < self.checkpoint.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"pass_ns_breakdown\": [\n");
        for (i, c) in self.pass_breakdown.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pools\": {}, \"threads\": {}, \"path\": \"{}\", \
                 \"per_window_pass_ns\": {{",
                c.pools, c.threads, c.path
            ));
            for (j, (name, ns)) in PASS_NAMES.iter().zip(c.per_window_pass_ns).enumerate() {
                s.push_str(&format!(
                    "\"{name}\": {ns}{}",
                    if j + 1 < PASS_COUNT { ", " } else { "" }
                ));
            }
            s.push_str(&format!(
                "}}}}{}\n",
                if i + 1 < self.pass_breakdown.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"per_window_ns\": [\n");
        for (i, c) in self.scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pools\": {}, \"threads\": {}, \"exec\": \"{}\", \"path\": \"{}\", \
                 \"per_window_ns\": {}}}{}\n",
                c.pools,
                c.threads,
                c.exec,
                c.path,
                c.per_window_ns,
                if i + 1 < self.scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Shard-and-merge sweep engine: {} pools / {} servers, {} windows, {} threads sharded",
            self.pools, self.servers, self.windows, self.threads
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.seed.to_string(),
                    if r.identical { "yes".into() } else { "NO".into() },
                    r.pools_planned.to_string(),
                    r.recommendations.to_string(),
                    format!("{:?}", r.per_window_seq),
                    format!("{:?}", r.per_window_sharded),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["Seed", "Identical", "Pools", "Recs", "Seq/window", "Sharded/window"],
                &rows
            )
        )?;
        writeln!(
            f,
            "sequential/sharded per-window ratio: {:.2}x; byte-identical: {}",
            self.speedup(),
            if self.all_identical() { "yes (all seeds)" } else { "NO" }
        )?;

        for &path in &SCALING_PATHS {
            writeln!(
                f,
                "\nScaling grid, {path} layout, per-window (vs = persistent-over-scoped speedup \
                 at the same width — the amortized spawn cost):"
            )?;
            let mut grid_rows: Vec<Vec<String>> = Vec::new();
            for &pools in &SCALING_POOLS {
                let mut row = vec![pools.to_string()];
                for &threads in &SCALING_THREADS {
                    match self.cell(pools, threads, "persistent", path) {
                        Some(p) if p > 0 => {
                            let vs = match self.cell(pools, threads, "scoped", path) {
                                Some(s) => format!(" (vs {:.2}x)", s as f64 / p as f64),
                                None => String::new(),
                            };
                            row.push(format!("{:.1}µs{vs}", p as f64 / 1e3));
                        }
                        _ => row.push("-".into()),
                    }
                }
                grid_rows.push(row);
            }
            // Headers derive from the same constant as the cells, so
            // retuning SCALING_THREADS cannot mislabel a column.
            let headers: Vec<String> = std::iter::once("Pools".to_string())
                .chain(SCALING_THREADS.iter().map(|t| {
                    if *t == 1 {
                        "1 thread".to_string()
                    } else {
                        format!("{t} threads")
                    }
                }))
                .collect();
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            writeln!(f, "{}", render_table(&header_refs, &grid_rows))?;
        }
        if let (Some(small), Some(large)) = (
            self.cell(512, 1, "persistent", "columns"),
            self.cell(16384, 1, "persistent", "columns"),
        ) {
            writeln!(
                f,
                "per-pool window cost: {:.0} ns at 512 pools, {:.0} ns at 16384 pools \
                 ({:.2}x; guard ceiling {PER_POOL_RATIO_CEILING}x)",
                small as f64 / 512.0,
                large as f64 / 16384.0,
                (large as f64 / 16384.0) / (small as f64 / 512.0)
            )?;
        }
        for c in &self.pass_breakdown {
            let total: u64 = c.per_window_pass_ns.iter().sum::<u64>().max(1);
            let parts: Vec<String> = PASS_NAMES
                .iter()
                .zip(c.per_window_pass_ns)
                .map(|(name, ns)| {
                    format!(
                        "{name} {:.1}µs ({:.0}%)",
                        ns as f64 / 1e3,
                        ns as f64 * 100.0 / total as f64
                    )
                })
                .collect();
            writeln!(
                f,
                "pass breakdown at {} pools ({}, {} thread): {}",
                c.pools,
                c.path,
                c.threads,
                parts.join(", ")
            )?;
        }
        if let Some(ext) = self.cell(EXTENDED_POOLS, 1, "persistent", "columns") {
            writeln!(
                f,
                "extended row at {EXTENDED_POOLS} pools (columns, 1 thread): {:.1}ms/window \
                 ({:.0} ns/pool)",
                ext as f64 / 1e6,
                ext as f64 / EXTENDED_POOLS as f64
            )?;
        }
        if let Some(m) = &self.million_pool {
            writeln!(
                f,
                "million-pool window ({} pools x {} server, 1 thread): columns \
                 {:.1}ms/window, streamed {:.1}ms/window ({:.2}x)",
                m.pools,
                m.servers_per_pool,
                m.per_window_ns as f64 / 1e6,
                m.streamed_per_window_ns as f64 / 1e6,
                m.per_window_ns as f64 / m.streamed_per_window_ns.max(1) as f64
            )?;
            let parts: Vec<String> = PASS_NAMES
                .iter()
                .zip(m.streamed_pass_ns)
                .map(|(name, ns)| format!("{name} {:.1}ms", ns as f64 / 1e6))
                .collect();
            writeln!(f, "million-pool streamed pass breakdown: {}", parts.join(", "))?;
        }
        for c in &self.checkpoint {
            let baseline = if c.pools == 4096 {
                format!(
                    " (plane store vs PR 6's {:.1} MiB: {:.2}x)",
                    CHECKPOINT_BASELINE_PR6_BYTES_4096 as f64 / (1024.0 * 1024.0),
                    c.bytes as f64 / CHECKPOINT_BASELINE_PR6_BYTES_4096 as f64
                )
            } else {
                String::new()
            };
            writeln!(
                f,
                "checkpoint at {} pools: {:.1} KiB, restore {:.1}µs{baseline}",
                c.pools,
                c.bytes as f64 / 1024.0,
                c.restore_ns as f64 / 1e3
            )?;
        }
        if let Some(speedup) = self.speedup_vs_baseline_4096() {
            writeln!(
                f,
                "columnar per-window speedup at 4096x1 vs PR 4 baseline ({:.2}ms): {speedup:.2}x",
                BASELINE_PR4_4096X1_NS as f64 / 1e6
            )?;
        }
        writeln!(
            f,
            "steady-state allocations/10 windows: rows {}, columns {}{}",
            self.steady_state_allocs,
            self.columnar_steady_state_allocs,
            if self.alloc_tracking {
                " (counted — must be 0)"
            } else {
                " (allocator not installed; run via `repro` to count)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diagnostic, not a gate: prints the per-pass breakdown without the
    /// rest of the experiment, for chasing a scaling-guard trip by hand
    /// (`cargo test --release -p headroom-bench -- --ignored print_pass`).
    #[test]
    #[ignore]
    fn print_pass_breakdown() {
        for c in measure_pass_breakdown() {
            let total: u64 = c.per_window_pass_ns.iter().sum();
            println!(
                "pools={} path={} total={}ns ({:.0} ns/pool)",
                c.pools,
                c.path,
                total,
                total as f64 / c.pools as f64
            );
            for (name, ns) in PASS_NAMES.iter().zip(c.per_window_pass_ns) {
                println!(
                    "  {name:10} {ns:>9} ns/window  {:>6.1} ns/pool",
                    ns as f64 / c.pools as f64
                );
            }
        }
    }

    #[test]
    fn sharded_sweep_is_identical_across_seeds() {
        // A reduced fleet keeps the test fast; the 81-pool shape is intact.
        let scale = Scale { observe_days: 0.5, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.pools, 81, "paper-shaped fleet");
        assert_eq!(r.rows.len(), 3, "three seeds swept");
        assert!(r.all_identical(), "sharded != sequential: {r}");
        assert!(r.rows.iter().all(|row| row.pools_planned == 81), "every pool planned: {r}");
        assert!(
            r.rows.iter().any(|row| row.recommendations > 0),
            "the overprovisioned fleet yields recommendations: {r}"
        );
        // Per layout: persistent cells at every measured (pools, threads),
        // scoped contrast cells at every (pools, threads > 1). Debug test
        // builds measure the grid without the 16384 row (release `repro`
        // always measures all of it).
        let measured_pools =
            if cfg!(debug_assertions) { SCALING_POOLS.len() - 1 } else { SCALING_POOLS.len() };
        assert_eq!(
            r.scaling.len(),
            SCALING_PATHS.len() * measured_pools * (2 * SCALING_THREADS.len() - 1),
            "full fleet-size × thread × exec × layout grid measured: {r}"
        );
        assert!(r.scaling.iter().all(|c| c.per_window_ns > 0), "grid cells are real timings");
        assert!(!r.alloc_tracking, "plain cargo test has no counting allocator");
        assert!(r.speedup_vs_baseline_4096().is_some(), "headline speedup derivable");
        let json = r.to_json();
        if !cfg!(debug_assertions) {
            assert!(json.contains("\"pools\": 16384"), "extended grid serialized: {json}");
        }
        assert!(json.contains("\"pools\": 4096"), "grid serialized: {json}");
        assert!(json.contains("\"path\": \"columns\""), "layout field serialized");
        assert!(json.contains("\"path\": \"streamed\""), "streamed path measured: {json}");
        assert_eq!(r.checkpoint.len(), 2, "checkpoint cost at 81 and 4096 pools");
        assert!(
            r.checkpoint.iter().all(|c| c.bytes > 0 && c.restore_ns > 0),
            "checkpoint cells are real measurements: {r}"
        );
        assert!(json.contains("\"checkpoint\": ["), "checkpoint array serialized: {json}");
        assert!(json.contains("\"restore_ns\""), "restore latency serialized");
        assert!(
            json.contains("\"checkpoint_baseline_pr6_bytes_4096\""),
            "checkpoint baseline serialized: {json}"
        );
        // The per-pass breakdown mirrors the grid's debug economy: 4096
        // only under `cargo test`, every shape in the release artifact —
        // each shape timed on both the columnar and the streamed path.
        let breakdown_shapes = 2 * if cfg!(debug_assertions) { 1 } else { BREAKDOWN_POOLS.len() };
        assert_eq!(r.pass_breakdown.len(), breakdown_shapes, "pass breakdown measured: {r}");
        for c in &r.pass_breakdown {
            assert_eq!(c.threads, 1, "breakdown cells are single-thread (timed) windows");
            assert!(
                c.per_window_pass_ns.iter().sum::<u64>() > 0,
                "pass timings are real measurements: {r}"
            );
            let sim_kernel = c.per_window_pass_ns[0];
            let aggregate = c.per_window_pass_ns[1];
            let scalar = c.per_window_pass_ns[6];
            assert!(aggregate > 0 && scalar > 0, "hot passes timed nonzero: {r}");
            if c.path == "streamed" {
                assert!(sim_kernel > 0, "streamed cells break out the sim_kernel pass: {r}");
            } else {
                assert_eq!(sim_kernel, 0, "materialised cells run no sim kernels: {r}");
            }
        }
        assert!(json.contains("\"pass_ns_breakdown\": ["), "pass breakdown serialized: {json}");
        assert!(json.contains("\"aggregate\":"), "pass names keyed in JSON: {json}");
        assert!(r.million_pool.is_none(), "quick runs skip the million-pool stretch window");
        assert!(
            r.scaling.iter().all(|c| c.pools != EXTENDED_POOLS),
            "quick runs skip the 65536-pool extended row"
        );
        assert!(json.contains("\"columnar_steady_state_allocations\": 0"), "colsim fields");
        assert!(json.contains("\"steady_state_allocations\": 0"), "alloc count serialized");
        let build = if cfg!(debug_assertions) { "debug" } else { "release" };
        assert!(
            json.contains(&format!(
                "\"host\": {{\"cores\": {}, \"build\": \"{build}\"",
                r.host_cores
            )),
            "host context serialized: {json}"
        );
        assert!(r.host_cores >= 1, "host core count probed");
    }
}
