//! The shard-and-merge sweep engine at paper fleet scale.
//!
//! Not a paper artifact: this experiment validates the three contracts of
//! `headroom_online::sweep::SweepEngine`:
//!
//! 1. **determinism** — on the paper-shaped fleet (9 datacenters × 9
//!    services = 81 pools), the sharded sweep produces recommendations and
//!    assessments *identical* to the sequential planner, across seeds;
//! 2. **spawn-amortized scaling** — a synthetic-fleet grid (8/81/512/4096
//!    pools × 1/2/4 threads, persistent worker pool) measures per-window
//!    cost and shows where `threads > 1` crosses below sequential now that
//!    the per-window hand-off is a parked-worker mailbox write instead of
//!    a thread spawn;
//! 3. **zero steady-state allocation** — a warmed, non-replan window
//!    through `step_snapshot_partitioned` → `SweepEngine::sweep` must not
//!    touch the heap. When the `repro` binary's counting allocator is
//!    installed, a nonzero count **fails the experiment** (and therefore
//!    CI); under plain `cargo test` the counter is inert and only the
//!    determinism/scaling contracts are exercised.
//!
//! `repro sweep` also emits the machine-readable `BENCH_sweep.json`
//! (per-window ns by fleet size × thread count, plus the allocation
//! count), checked in per PR so the perf trajectory is tracked.
//!
//! Seeds are swept in parallel — each seed owns two simulations and two
//! engines on its own worker thread, so the harness itself exercises the
//! scenario-level parallelism the ROADMAP asked of the experiment suite.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{PartitionedSnapshot, RecordingPolicy, SimConfig, Simulation};
use headroom_cluster::topology::FleetBuilder;
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track;
use headroom_online::planner::{OnlinePlannerConfig, SweepExec};
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::time::WindowIndex;
use headroom_workload::events::EventScript;

use crate::csv::CsvTable;
use crate::synthetic::{synthetic_snapshots, warmed_engine, RecordedWindow};
use crate::Scale;

/// Fan-out width of the sharded engine under test.
pub const SHARDED_THREADS: usize = 4;

/// One seed's sequential-vs-sharded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeedRow {
    /// Seed driving both simulations.
    pub seed: u64,
    /// Whether assessments *and* recommendations matched exactly.
    pub identical: bool,
    /// Recommendations both engines emitted.
    pub recommendations: usize,
    /// Pools the engines planned.
    pub pools_planned: usize,
    /// Mean per-window planning cost, sequential engine.
    pub per_window_seq: Duration,
    /// Mean per-window planning cost, sharded engine.
    pub per_window_sharded: Duration,
}

/// One cell of the spawn-amortization grid: per-window planning cost for
/// one synthetic fleet size at one fan-out width and execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingCell {
    /// Pools in the synthetic fleet.
    pub pools: u32,
    /// Fan-out width.
    pub threads: usize,
    /// Execution mode: `"persistent"` (worker pool) or `"scoped"` (legacy
    /// spawn-per-window, measured for the amortization headline).
    pub exec: &'static str,
    /// Mean per-window cost, nanoseconds.
    pub per_window_ns: u64,
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Pools in the fleet.
    pub pools: usize,
    /// Servers in the fleet.
    pub servers: usize,
    /// Windows driven per seed.
    pub windows: u64,
    /// Fan-out width of the sharded engine.
    pub threads: usize,
    /// Per-seed rows.
    pub rows: Vec<SweepSeedRow>,
    /// Spawn-amortization grid: fleet size × thread count.
    pub scaling: Vec<ScalingCell>,
    /// Heap allocations counted over the steady-state measurement windows
    /// (must be 0 when `alloc_tracking`).
    pub steady_state_allocs: u64,
    /// Whether the counting allocator was installed (true under `repro`,
    /// false under plain `cargo test`, where the count is meaningless).
    pub alloc_tracking: bool,
}

impl SweepReport {
    /// Whether every seed matched bit-for-bit.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Mean sequential-over-sharded per-window cost ratio (> 1 means the
    /// fan-out won).
    pub fn speedup(&self) -> f64 {
        let (mut seq, mut sharded) = (0.0, 0.0);
        for r in &self.rows {
            seq += r.per_window_seq.as_secs_f64();
            sharded += r.per_window_sharded.as_secs_f64();
        }
        if sharded <= 0.0 {
            f64::INFINITY
        } else {
            seq / sharded
        }
    }
}

fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    // Per-pool QoS from the service catalog, as the batch fleet experiments
    // derive it.
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

fn run_seed(seed: u64, fraction: f64, windows: u64) -> SweepSeedRow {
    let drive = |threads: usize| {
        let scenario = FleetScenario::paper_scale(seed, fraction)
            .with_recording(RecordingPolicy::SnapshotOnly);
        let config = OnlinePlannerConfig {
            window_capacity: windows as usize,
            min_fit_windows: 180.min(windows as usize / 2),
            threads,
            ..OnlinePlannerConfig::default()
        };
        let mut sim = scenario.into_simulation();
        let mut engine = engine_for(sim.fleet(), config);
        let mut recs = Vec::new();
        let mut spent = Duration::ZERO;
        for _ in 0..windows {
            let snap = sim.step_snapshot_partitioned();
            let t = Instant::now();
            engine.observe_partitioned(&snap);
            spent += t.elapsed();
            recs.extend(engine.drain_recommendations());
        }
        (engine, recs, spent / windows.max(1) as u32)
    };
    let (seq_engine, seq_recs, per_window_seq) = drive(1);
    let (sharded_engine, sharded_recs, per_window_sharded) = drive(SHARDED_THREADS);
    let identical =
        seq_engine.assessments() == sharded_engine.assessments() && seq_recs == sharded_recs;
    SweepSeedRow {
        seed,
        identical,
        recommendations: seq_recs.len(),
        pools_planned: seq_engine.assessments().len(),
        per_window_seq,
        per_window_sharded,
    }
}

/// Fleet sizes of the spawn-amortization grid.
pub const SCALING_POOLS: [u32; 4] = [8, 81, 512, 4096];
/// Fan-out widths of the spawn-amortization grid.
pub const SCALING_THREADS: [usize; 3] = [1, 2, 4];

const GRID_WARM_WINDOWS: u64 = 72;
const GRID_MEASURE_WINDOWS: u64 = 24;

/// Measures one grid cell: mean warmed per-window cost.
fn measure_cell(
    snapshots: &[RecordedWindow],
    pools: u32,
    threads: usize,
    exec: SweepExec,
) -> ScalingCell {
    let config = OnlinePlannerConfig {
        window_capacity: 48,
        min_fit_windows: 24,
        threads,
        exec,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = warmed_engine(snapshots, config);
    let t = Instant::now();
    for i in 0..GRID_MEASURE_WINDOWS {
        let (rows, slices) = &snapshots[(i % GRID_WARM_WINDOWS) as usize];
        engine.observe_partitioned(&PartitionedSnapshot {
            window: WindowIndex(GRID_WARM_WINDOWS + i),
            rows,
            pools: slices,
        });
        engine.drain_recommendations();
    }
    let per_window_ns = (t.elapsed().as_nanos() / GRID_MEASURE_WINDOWS as u128) as u64;
    let exec = match exec {
        SweepExec::Persistent => "persistent",
        SweepExec::Scoped => "scoped",
    };
    ScalingCell { pools, threads, exec, per_window_ns }
}

/// Measures the spawn-amortization grid: persistent workers at every fleet
/// size × thread count, plus the legacy scoped shape at `threads > 1` so
/// the removed spawn cost stays visible (and tracked) per PR.
///
/// Deliberately *not* scaled by `--quick`: the grid is the checked-in
/// `BENCH_sweep.json` artifact, and cross-PR comparability requires every
/// run to measure the same fleet sizes. It is sized to stay in low seconds
/// (72 warm + 24 measured windows per cell) even at 4096 pools.
fn measure_scaling() -> Vec<ScalingCell> {
    let mut cells = Vec::new();
    for &pools in &SCALING_POOLS {
        let snapshots = synthetic_snapshots(pools, 3, GRID_WARM_WINDOWS);
        for &threads in &SCALING_THREADS {
            cells.push(measure_cell(&snapshots, pools, threads, SweepExec::Persistent));
            if threads > 1 {
                cells.push(measure_cell(&snapshots, pools, threads, SweepExec::Scoped));
            }
        }
    }
    cells
}

/// Counts heap allocations over warmed, non-replan windows of the full
/// `step_snapshot_partitioned` → `SweepEngine::sweep` path. Meaningful only
/// when [`alloc_track::is_tracking`] — always 0 otherwise.
fn measure_steady_state_allocs() -> u64 {
    const REPLAN_EVERY: u64 = 16;
    let fleet = FleetBuilder::new(11)
        .datacenters(3)
        .without_failures()
        .without_incidents()
        .deploy_service(MicroserviceKind::B, 12)
        .expect("catalog service deploys")
        .build();
    let sim_config =
        SimConfig { seed: 11, recording: RecordingPolicy::SnapshotOnly, track_availability: false };
    let mut sim = Simulation::new(fleet, EventScript::empty(), sim_config);
    let config = OnlinePlannerConfig {
        window_capacity: 64,
        min_fit_windows: 32,
        replan_every: REPLAN_EVERY,
        threads: 2,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    // Warm-up ends on a replan tick so every measured window is non-replan.
    for _ in 0..25 * REPLAN_EVERY {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
    }
    engine.drain_recommendations();
    // Fixture guards, not contract checks: a measured window that replans
    // (cadence misalignment) or an urgent pool (which legitimately replans
    // and may emit every window) would make a nonzero count a *fixture*
    // bug — fail loudly as such rather than blaming the allocation
    // contract.
    assert!(
        engine.windows_seen().is_multiple_of(REPLAN_EVERY),
        "alloc fixture: warm-up must end on a replan tick"
    );
    assert!(
        !engine.assessments().is_empty()
            && engine.assessments().values().all(|a| !a.band.needs_capacity()),
        "alloc fixture: the measured fleet must be planned and non-urgent"
    );
    let before = alloc_track::allocations();
    for _ in 0..10 {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
    }
    alloc_track::allocations() - before
}

/// Runs the sequential-vs-sharded identity comparison over three seeds in
/// parallel, then the spawn-amortization grid and the steady-state
/// allocation count.
///
/// # Errors
///
/// Propagates worker panics, fails outright when any seed's sharded run
/// diverges from the sequential one, and — when the counting allocator is
/// installed (the `repro` binary) — fails when a warmed non-replan window
/// allocated. These are acceptance criteria, so a CI smoke run must go
/// red, not print a sad table and exit 0.
pub fn run(scale: &Scale) -> Result<SweepReport, Box<dyn Error>> {
    let windows = scale.observe_windows();
    let fraction = scale.fleet_fraction;
    let probe = FleetScenario::paper_scale(scale.seed, fraction);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    let seeds: Vec<u64> = (0..3).map(|i| scale.seed + i).collect();
    let rows: Vec<SweepSeedRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || run_seed(seed, fraction, windows)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Result<Vec<_>, _>>()
    })
    .map_err(|_| "sweep seed worker panicked")?;

    let scaling = measure_scaling();
    let alloc_tracking = alloc_track::is_tracking();
    let steady_state_allocs = measure_steady_state_allocs();
    let report = SweepReport {
        pools,
        servers,
        windows,
        threads: SHARDED_THREADS,
        rows,
        scaling,
        steady_state_allocs,
        alloc_tracking,
    };
    if !report.all_identical() {
        return Err(format!("sharded sweep diverged from the sequential planner:\n{report}").into());
    }
    if alloc_tracking && steady_state_allocs > 0 {
        return Err(format!(
            "steady-state window path allocated {steady_state_allocs} times — \
             the zero-allocation contract is broken:\n{report}"
        )
        .into());
    }
    Ok(report)
}

impl SweepReport {
    /// CSV export of the comparison and the scaling grid.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "sweep_engine".into(),
                headers: vec![
                    "seed".into(),
                    "identical".into(),
                    "pools_planned".into(),
                    "recommendations".into(),
                    "per_window_seq_us".into(),
                    "per_window_sharded_us".into(),
                ],
                rows: self
                    .rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.seed.to_string(),
                            r.identical.to_string(),
                            r.pools_planned.to_string(),
                            r.recommendations.to_string(),
                            format!("{:.1}", r.per_window_seq.as_secs_f64() * 1e6),
                            format!("{:.1}", r.per_window_sharded.as_secs_f64() * 1e6),
                        ]
                    })
                    .collect(),
            },
            CsvTable {
                name: "sweep_scaling".into(),
                headers: vec![
                    "pools".into(),
                    "threads".into(),
                    "exec".into(),
                    "per_window_ns".into(),
                ],
                rows: self
                    .scaling
                    .iter()
                    .map(|c| {
                        vec![
                            c.pools.to_string(),
                            c.threads.to_string(),
                            c.exec.to_string(),
                            c.per_window_ns.to_string(),
                        ]
                    })
                    .collect(),
            },
        ]
    }

    /// The machine-readable `BENCH_sweep.json` payload: the scaling grid
    /// plus the steady-state allocation count, checked in per PR so the
    /// perf trajectory is diffable. All values are numbers/booleans, so the
    /// formatting needs no escaping.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"experiment\": \"sweep\",\n");
        s.push_str(&format!("  \"identity_pools\": {},\n", self.pools));
        s.push_str(&format!("  \"identity_threads\": {},\n", self.threads));
        s.push_str(&format!("  \"identical\": {},\n", self.all_identical()));
        s.push_str(&format!("  \"alloc_tracking\": {},\n", self.alloc_tracking));
        s.push_str(&format!("  \"steady_state_allocations\": {},\n", self.steady_state_allocs));
        s.push_str("  \"per_window_ns\": [\n");
        for (i, c) in self.scaling.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pools\": {}, \"threads\": {}, \"exec\": \"{}\", \"per_window_ns\": {}}}{}\n",
                c.pools,
                c.threads,
                c.exec,
                c.per_window_ns,
                if i + 1 < self.scaling.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Shard-and-merge sweep engine: {} pools / {} servers, {} windows, {} threads sharded",
            self.pools, self.servers, self.windows, self.threads
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.seed.to_string(),
                    if r.identical { "yes".into() } else { "NO".into() },
                    r.pools_planned.to_string(),
                    r.recommendations.to_string(),
                    format!("{:?}", r.per_window_seq),
                    format!("{:?}", r.per_window_sharded),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["Seed", "Identical", "Pools", "Recs", "Seq/window", "Sharded/window"],
                &rows
            )
        )?;
        writeln!(
            f,
            "sequential/sharded per-window ratio: {:.2}x; byte-identical: {}",
            self.speedup(),
            if self.all_identical() { "yes (all seeds)" } else { "NO" }
        )?;

        writeln!(
            f,
            "\nSpawn-amortized scaling, per-window (vs = persistent-over-scoped speedup at the \
             same width — the amortized spawn cost):"
        )?;
        let cell = |pools: u32, threads: usize, exec: &str| {
            self.scaling
                .iter()
                .find(|c| c.pools == pools && c.threads == threads && c.exec == exec)
                .map(|c| c.per_window_ns)
        };
        let mut grid_rows: Vec<Vec<String>> = Vec::new();
        for &pools in &SCALING_POOLS {
            let mut row = vec![pools.to_string()];
            for &threads in &SCALING_THREADS {
                match cell(pools, threads, "persistent") {
                    Some(p) if p > 0 => {
                        let vs = match cell(pools, threads, "scoped") {
                            Some(s) => format!(" (vs {:.2}x)", s as f64 / p as f64),
                            None => String::new(),
                        };
                        row.push(format!("{:.1}µs{vs}", p as f64 / 1e3));
                    }
                    _ => row.push("-".into()),
                }
            }
            grid_rows.push(row);
        }
        // Headers derive from the same constant as the cells, so retuning
        // SCALING_THREADS cannot mislabel a column.
        let headers: Vec<String> = std::iter::once("Pools".to_string())
            .chain(SCALING_THREADS.iter().map(|t| {
                if *t == 1 {
                    "1 thread".to_string()
                } else {
                    format!("{t} threads")
                }
            }))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        writeln!(f, "{}", render_table(&header_refs, &grid_rows))?;
        writeln!(
            f,
            "steady-state allocations/10 windows: {}{}",
            self.steady_state_allocs,
            if self.alloc_tracking {
                " (counted — must be 0)"
            } else {
                " (allocator not installed; run via `repro` to count)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_sweep_is_identical_across_seeds() {
        // A reduced fleet keeps the test fast; the 81-pool shape is intact.
        let scale = Scale { observe_days: 0.5, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.pools, 81, "paper-shaped fleet");
        assert_eq!(r.rows.len(), 3, "three seeds swept");
        assert!(r.all_identical(), "sharded != sequential: {r}");
        assert!(r.rows.iter().all(|row| row.pools_planned == 81), "every pool planned: {r}");
        assert!(
            r.rows.iter().any(|row| row.recommendations > 0),
            "the overprovisioned fleet yields recommendations: {r}"
        );
        // Persistent cells at every (pools, threads), scoped contrast cells
        // at every (pools, threads > 1).
        assert_eq!(
            r.scaling.len(),
            SCALING_POOLS.len() * (2 * SCALING_THREADS.len() - 1),
            "full fleet-size × thread × exec grid measured: {r}"
        );
        assert!(r.scaling.iter().all(|c| c.per_window_ns > 0), "grid cells are real timings");
        assert!(!r.alloc_tracking, "plain cargo test has no counting allocator");
        let json = r.to_json();
        assert!(json.contains("\"pools\": 4096"), "grid serialized: {json}");
        assert!(json.contains("\"steady_state_allocations\": 0"), "alloc count serialized");
    }
}
