//! The shard-and-merge sweep engine at paper fleet scale.
//!
//! Not a paper artifact: this experiment validates the two contracts of
//! `headroom_online::sweep::SweepEngine` on the paper-shaped fleet (9
//! datacenters × 9 services = 81 pools):
//!
//! 1. **determinism** — the sharded sweep produces recommendations and
//!    assessments *identical* to the sequential planner, across seeds;
//! 2. **throughput** — per-window planning cost, measured separately for
//!    the sequential and the fanned-out engine (the ratio is reported; on a
//!    single-core host it is honestly ≤ 1, thread spawn overhead included).
//!
//! Seeds are swept in parallel — each seed owns two simulations and two
//! engines on its own worker thread, so the harness itself exercises the
//! scenario-level parallelism the ROADMAP asked of the experiment suite.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::RecordingPolicy;
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::OnlinePlannerConfig;
use headroom_online::sweep::SweepEngine;

use crate::csv::CsvTable;
use crate::Scale;

/// Fan-out width of the sharded engine under test.
pub const SHARDED_THREADS: usize = 4;

/// One seed's sequential-vs-sharded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeedRow {
    /// Seed driving both simulations.
    pub seed: u64,
    /// Whether assessments *and* recommendations matched exactly.
    pub identical: bool,
    /// Recommendations both engines emitted.
    pub recommendations: usize,
    /// Pools the engines planned.
    pub pools_planned: usize,
    /// Mean per-window planning cost, sequential engine.
    pub per_window_seq: Duration,
    /// Mean per-window planning cost, sharded engine.
    pub per_window_sharded: Duration,
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Pools in the fleet.
    pub pools: usize,
    /// Servers in the fleet.
    pub servers: usize,
    /// Windows driven per seed.
    pub windows: u64,
    /// Fan-out width of the sharded engine.
    pub threads: usize,
    /// Per-seed rows.
    pub rows: Vec<SweepSeedRow>,
}

impl SweepReport {
    /// Whether every seed matched bit-for-bit.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Mean sequential-over-sharded per-window cost ratio (> 1 means the
    /// fan-out won).
    pub fn speedup(&self) -> f64 {
        let (mut seq, mut sharded) = (0.0, 0.0);
        for r in &self.rows {
            seq += r.per_window_seq.as_secs_f64();
            sharded += r.per_window_sharded.as_secs_f64();
        }
        if sharded <= 0.0 {
            f64::INFINITY
        } else {
            seq / sharded
        }
    }
}

fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    // Per-pool QoS from the service catalog, as the batch fleet experiments
    // derive it.
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

fn run_seed(seed: u64, fraction: f64, windows: u64) -> SweepSeedRow {
    let drive = |threads: usize| {
        let scenario = FleetScenario::paper_scale(seed, fraction)
            .with_recording(RecordingPolicy::SnapshotOnly);
        let config = OnlinePlannerConfig {
            window_capacity: windows as usize,
            min_fit_windows: 180.min(windows as usize / 2),
            threads,
            ..OnlinePlannerConfig::default()
        };
        let mut sim = scenario.into_simulation();
        let mut engine = engine_for(sim.fleet(), config);
        let mut recs = Vec::new();
        let mut spent = Duration::ZERO;
        for _ in 0..windows {
            let snap = sim.step_snapshot_partitioned();
            let t = Instant::now();
            engine.observe_partitioned(&snap);
            spent += t.elapsed();
            recs.extend(engine.drain_recommendations());
        }
        (engine, recs, spent / windows.max(1) as u32)
    };
    let (seq_engine, seq_recs, per_window_seq) = drive(1);
    let (sharded_engine, sharded_recs, per_window_sharded) = drive(SHARDED_THREADS);
    let identical =
        seq_engine.assessments() == sharded_engine.assessments() && seq_recs == sharded_recs;
    SweepSeedRow {
        seed,
        identical,
        recommendations: seq_recs.len(),
        pools_planned: seq_engine.assessments().len(),
        per_window_seq,
        per_window_sharded,
    }
}

/// Runs the sequential-vs-sharded comparison over three seeds in parallel.
///
/// # Errors
///
/// Propagates worker panics, and fails outright when any seed's sharded run
/// diverges from the sequential one — byte-identity is the acceptance
/// criterion, so a CI smoke run of this experiment must go red, not print a
/// sad table and exit 0.
pub fn run(scale: &Scale) -> Result<SweepReport, Box<dyn Error>> {
    let windows = scale.observe_windows();
    let fraction = scale.fleet_fraction;
    let probe = FleetScenario::paper_scale(scale.seed, fraction);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    let seeds: Vec<u64> = (0..3).map(|i| scale.seed + i).collect();
    let rows: Vec<SweepSeedRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| scope.spawn(move || run_seed(seed, fraction, windows)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect::<Result<Vec<_>, _>>()
    })
    .map_err(|_| "sweep seed worker panicked")?;

    let report = SweepReport { pools, servers, windows, threads: SHARDED_THREADS, rows };
    if !report.all_identical() {
        return Err(format!("sharded sweep diverged from the sequential planner:\n{report}").into());
    }
    Ok(report)
}

impl SweepReport {
    /// CSV export of the comparison.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "sweep_engine".into(),
            headers: vec![
                "seed".into(),
                "identical".into(),
                "pools_planned".into(),
                "recommendations".into(),
                "per_window_seq_us".into(),
                "per_window_sharded_us".into(),
            ],
            rows: self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.seed.to_string(),
                        r.identical.to_string(),
                        r.pools_planned.to_string(),
                        r.recommendations.to_string(),
                        format!("{:.1}", r.per_window_seq.as_secs_f64() * 1e6),
                        format!("{:.1}", r.per_window_sharded.as_secs_f64() * 1e6),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Shard-and-merge sweep engine: {} pools / {} servers, {} windows, {} threads sharded",
            self.pools, self.servers, self.windows, self.threads
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.seed.to_string(),
                    if r.identical { "yes".into() } else { "NO".into() },
                    r.pools_planned.to_string(),
                    r.recommendations.to_string(),
                    format!("{:?}", r.per_window_seq),
                    format!("{:?}", r.per_window_sharded),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["Seed", "Identical", "Pools", "Recs", "Seq/window", "Sharded/window"],
                &rows
            )
        )?;
        writeln!(
            f,
            "sequential/sharded per-window ratio: {:.2}x; byte-identical: {}",
            self.speedup(),
            if self.all_identical() { "yes (all seeds)" } else { "NO" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_sweep_is_identical_across_seeds() {
        // A reduced fleet keeps the test fast; the 81-pool shape is intact.
        let scale = Scale { observe_days: 0.5, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.pools, 81, "paper-shaped fleet");
        assert_eq!(r.rows.len(), 3, "three seeds swept");
        assert!(r.all_identical(), "sharded != sequential: {r}");
        assert!(r.rows.iter().all(|row| row.pools_planned == 81), "every pool planned: {r}");
        assert!(
            r.rows.iter().any(|row| row.recommendations > 0),
            "the overprovisioned fleet yields recommendations: {r}"
        );
    }
}
