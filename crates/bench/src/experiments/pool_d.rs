//! Table III + Figs. 10–11 — the pool D 10% server-reduction experiment
//! (§III-A2), including the DC 4 replication.
//!
//! Paper numbers being reproduced:
//!
//! - Table III: RPS/server percentiles 56.8/74.8/77.7 → 63.5/89.0/94.9
//!   (+22% at p95: the reduction *and* an organic traffic increase);
//! - Fig. 10: CPU line `y = 0.0916x + 5.006 (R² = 0.940)` predicting 13.7%
//!   at 94.9 RPS/server, measured 13.3%;
//! - Fig. 11: latency quadratic `y = 4.66e-3x² − 0.80x + 86.50` predicting
//!   52.6 ms, measured 50.7 ms;
//! - replication in a second datacenter: 15.5% predicted and observed CPU,
//!   latency 59 → 61 ms.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::curves::{CpuModel, LatencyModel, PoolObservations};
use headroom_core::report::render_table;
use headroom_telemetry::time::{SimTime, WindowIndex, WindowRange};
use headroom_workload::events::{EventEffect, EventScript, ScheduledEvent};

use crate::csv::CsvTable;
use crate::experiments::pool_b::StagePercentiles;
use crate::Scale;

/// Results for one datacenter's pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DcResult {
    /// Datacenter index (0 = the paper's DC 1, 1 = the DC 4 replica).
    pub datacenter: usize,
    /// Stage-1 percentiles.
    pub stage1: StagePercentiles,
    /// Stage-2 percentiles.
    pub stage2: StagePercentiles,
    /// Stage-1 CPU fit.
    pub cpu_fit: CpuModel,
    /// Predicted CPU at the stage-2 p95 workload.
    pub cpu_predicted: f64,
    /// Measured CPU (stage-2 fit evaluated at the same workload).
    pub cpu_measured: f64,
    /// Predicted latency at the stage-2 p95 workload.
    pub latency_predicted: f64,
    /// Measured stage-2 latency near that workload.
    pub latency_measured: f64,
}

/// The pool-D experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolDReport {
    /// Primary DC plus the replication DC.
    pub datacenters: Vec<DcResult>,
    /// Scatter `(dc, stage, rps, cpu, latency)` for Figs. 10–11.
    pub scatter: Vec<(usize, u8, f64, f64, f64)>,
}

/// Runs the pool-D experiment: two datacenters, 10% reduction for 2 days
/// with a +10% organic traffic rise during the reduced stage.
///
/// # Errors
///
/// Propagates simulation and fitting failures.
pub fn run(scale: &Scale) -> Result<PoolDReport, Box<dyn Error>> {
    let servers = scale.pool_servers;
    // Organic +10% demand during stage 2 (the paper's reduction coincided
    // with a traffic increase: expected +11% at p95 became +22%).
    let stage2_start = SimTime::from_days(7.0);
    let events = EventScript::new(vec![ScheduledEvent::new(
        stage2_start,
        2 * 86_400,
        EventEffect::GlobalDemandMultiplier { factor: 1.10 },
    )]);
    let scenario = FleetScenario::single_service(MicroserviceKind::D, 2, servers, scale.seed)
        .with_events(events);
    let mut sim = scenario.into_simulation();
    let pools: Vec<_> = sim.fleet().pools().iter().map(|p| p.id).collect();

    let reduced = (servers as f64 * 0.9).round() as usize;
    for &pool in &pools {
        sim.schedule_resize(pool, WindowIndex(7 * 720), reduced)?;
    }
    sim.run_days(9.0);

    let stage1_range = WindowRange::new(WindowIndex(0), WindowIndex(5 * 720));
    let stage2_range = WindowRange::new(WindowIndex(7 * 720), WindowIndex(9 * 720));

    let mut datacenters = Vec::new();
    let mut scatter = Vec::new();
    for (dc, &pool) in pools.iter().enumerate() {
        let obs1 = PoolObservations::collect(sim.store(), pool, stage1_range)?;
        let obs2 = PoolObservations::collect(sim.store(), pool, stage2_range)?;
        let stage1 = StagePercentiles {
            p50: obs1.rps_percentile(50.0)?,
            p75: obs1.rps_percentile(75.0)?,
            p95: obs1.rps_percentile(95.0)?,
        };
        let stage2 = StagePercentiles {
            p50: obs2.rps_percentile(50.0)?,
            p75: obs2.rps_percentile(75.0)?,
            p95: obs2.rps_percentile(95.0)?,
        };
        let cpu_fit = CpuModel::fit(&obs1)?;
        let cpu_fit2 = CpuModel::fit(&obs2)?;
        let latency1 = LatencyModel::fit(&obs1)?;
        let near: Vec<f64> = (0..obs2.len())
            .filter(|&i| (obs2.rps_per_server[i] - stage2.p95).abs() / stage2.p95 < 0.03)
            .map(|i| obs2.latency_p95_ms[i])
            .collect();
        let latency_measured = if near.is_empty() {
            LatencyModel::fit(&obs2)?.predict(stage2.p95)
        } else {
            near.iter().sum::<f64>() / near.len() as f64
        };
        datacenters.push(DcResult {
            datacenter: dc,
            stage1,
            stage2,
            cpu_predicted: cpu_fit.predict(stage2.p95),
            cpu_measured: cpu_fit2.predict(stage2.p95),
            latency_predicted: latency1.predict(stage2.p95),
            latency_measured,
            cpu_fit,
        });
        for (stage, obs) in [(1u8, &obs1), (2u8, &obs2)] {
            for i in 0..obs.len() {
                if obs.windows[i].0 % 3 == 0 {
                    scatter.push((
                        dc,
                        stage,
                        obs.rps_per_server[i],
                        obs.cpu_pct[i],
                        obs.latency_p95_ms[i],
                    ));
                }
            }
        }
    }
    Ok(PoolDReport { datacenters, scatter })
}

impl PoolDReport {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "table3_rps_percentiles".into(),
                headers: vec![
                    "datacenter".into(),
                    "stage".into(),
                    "p50".into(),
                    "p75".into(),
                    "p95".into(),
                ],
                rows: self
                    .datacenters
                    .iter()
                    .flat_map(|d| {
                        [
                            vec![
                                format!("DC{}", d.datacenter + 1),
                                "original".into(),
                                format!("{:.1}", d.stage1.p50),
                                format!("{:.1}", d.stage1.p75),
                                format!("{:.1}", d.stage1.p95),
                            ],
                            vec![
                                format!("DC{}", d.datacenter + 1),
                                "10pct_reduction".into(),
                                format!("{:.1}", d.stage2.p50),
                                format!("{:.1}", d.stage2.p75),
                                format!("{:.1}", d.stage2.p95),
                            ],
                        ]
                    })
                    .collect(),
            },
            CsvTable {
                name: "fig10_11_scatter".into(),
                headers: vec![
                    "datacenter".into(),
                    "stage".into(),
                    "rps_per_server".into(),
                    "cpu_pct".into(),
                    "latency_ms".into(),
                ],
                rows: self
                    .scatter
                    .iter()
                    .map(|(dc, s, r, c, l)| {
                        vec![
                            format!("DC{}", dc + 1),
                            s.to_string(),
                            format!("{r:.1}"),
                            format!("{c:.2}"),
                            format!("{l:.2}"),
                        ]
                    })
                    .collect(),
            },
        ]
    }
}

impl fmt::Display for PoolDReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III + Figs. 10-11: pool D 10% reduction experiment")?;
        for d in &self.datacenters {
            let name = if d.datacenter == 0 { "DC1 (paper DC1)" } else { "DC2 (paper DC4)" };
            writeln!(f, "{name}:")?;
            let rows = vec![
                vec![
                    "Original".into(),
                    format!("{:.1}", d.stage1.p50),
                    format!("{:.1}", d.stage1.p75),
                    format!("{:.1}", d.stage1.p95),
                    "56.8/74.8/77.7".into(),
                ],
                vec![
                    "10% reduction".into(),
                    format!("{:.1}", d.stage2.p50),
                    format!("{:.1}", d.stage2.p75),
                    format!("{:.1}", d.stage2.p95),
                    "63.5/89.0/94.9".into(),
                ],
            ];
            writeln!(f, "{}", render_table(&["Stage", "p50", "p75", "p95", "Paper DC1"], &rows))?;
            writeln!(f, "  CPU fit     : {}   (paper: y=0.0916x+5.006, R2=0.940)", d.cpu_fit.fit)?;
            writeln!(
                f,
                "  CPU @p95    : predicted {:.1}% vs measured {:.1}%  (paper 13.7 vs 13.3)",
                d.cpu_predicted, d.cpu_measured
            )?;
            writeln!(
                f,
                "  Latency @p95: predicted {:.1} ms vs measured {:.1} ms  (paper 52.6 vs 50.7)",
                d.latency_predicted, d.latency_measured
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_pool_d_experiment_shape() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.datacenters.len(), 2);
        let d = &r.datacenters[0];
        // Table III shape: ~+22% at p95 (10% reduction + 10% organic rise).
        let change = d.stage2.p95 / d.stage1.p95 - 1.0;
        assert!((change - 0.22).abs() < 0.05, "p95 change {change:.2}");
        // Fig. 10: slope close to the paper's 0.0916.
        assert!((d.cpu_fit.fit.slope - 0.0916).abs() < 0.01, "slope {}", d.cpu_fit.fit.slope);
        let cpu_err = (d.cpu_predicted - d.cpu_measured).abs() / d.cpu_measured;
        assert!(cpu_err < 0.06, "cpu err {cpu_err:.3}");
        // Fig. 11: latency forecast accurate.
        let lat_err = (d.latency_predicted - d.latency_measured).abs() / d.latency_measured;
        assert!(lat_err < 0.06, "lat err {lat_err:.3}");
        // Replica DC agrees with its own forecast too.
        let rep = &r.datacenters[1];
        let rep_err = (rep.latency_predicted - rep.latency_measured).abs() / rep.latency_measured;
        assert!(rep_err < 0.08, "replica err {rep_err:.3}");
    }
}
