//! Table II + Figs. 8–9 — the pool B 30% server-reduction experiment
//! (§III-A1).
//!
//! Paper numbers being reproduced:
//!
//! - Table II: RPS/server percentiles 249.5/309.3/376.8 before, and
//!   390.4/461.1/540.3 after the 30% reduction;
//! - Fig. 8: stage-1 CPU line `y = 0.028x + 1.37 (R² = 0.984)` forecasting
//!   16.5% CPU at 540 RPS/server, measured 17.4%;
//! - Fig. 9: stage-1 latency quadratic `y = 4.028e-5x² − 0.031x + 36.68`
//!   forecasting 31.5 ms, measured 30.9 ms.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::curves::{CpuModel, LatencyModel, PoolObservations};
use headroom_core::report::render_table;
use headroom_telemetry::time::{WindowIndex, WindowRange};

use crate::csv::CsvTable;
use crate::Scale;

/// A reduction-experiment stage's workload percentiles (a Table II row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePercentiles {
    /// Median RPS/server.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// The full pool-B experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolBReport {
    /// Stage-1 percentiles (paper: 249.5 / 309.3 / 376.8).
    pub stage1: StagePercentiles,
    /// Stage-2 percentiles (paper: 390.4 / 461.1 / 540.3).
    pub stage2: StagePercentiles,
    /// Stage-1 CPU fit (paper slope 0.028, intercept 1.37, R² 0.984).
    pub cpu_fit: CpuModel,
    /// Stage-2 CPU fit (the paper's measured line).
    pub cpu_fit_stage2: CpuModel,
    /// CPU forecast at the stage-2 p95 workload (paper: 16.5%).
    pub cpu_predicted: f64,
    /// Measured CPU at that workload from the stage-2 fit (paper: 17.4%).
    pub cpu_measured: f64,
    /// Stage-1 latency quadratic coefficients.
    pub latency_coeffs: Vec<f64>,
    /// Latency forecast at the stage-2 p95 workload (paper: 31.5 ms).
    pub latency_predicted: f64,
    /// Measured latency near that workload in stage 2 (paper: 30.9 ms).
    pub latency_measured: f64,
    /// Scatter `(stage, rps, cpu, latency)` for Figs. 8–9.
    pub scatter: Vec<(u8, f64, f64, f64)>,
}

fn percentiles(obs: &PoolObservations) -> Result<StagePercentiles, Box<dyn Error>> {
    Ok(StagePercentiles {
        p50: obs.rps_percentile(50.0)?,
        p75: obs.rps_percentile(75.0)?,
        p95: obs.rps_percentile(95.0)?,
    })
}

/// Runs the pool-B experiment: 5 weekdays at full size, then 5 weekdays at
/// 70% (the weekend between the stages is excluded from analysis, as the
/// paper's weekday observation windows were).
///
/// # Errors
///
/// Propagates simulation and fitting failures.
pub fn run(scale: &Scale) -> Result<PoolBReport, Box<dyn Error>> {
    let servers = scale.pool_servers;
    let scenario = FleetScenario::single_service(MicroserviceKind::B, 1, servers, scale.seed);
    let mut sim = scenario.into_simulation();
    let pool = sim.fleet().pools()[0].id;

    // Stage 1: days 0-4 (Mon-Fri). Weekend: days 5-6. Stage 2: days 7-11.
    let reduced = (servers as f64 * 0.7).round() as usize;
    sim.schedule_resize(pool, WindowIndex(7 * 720), reduced)?;
    sim.run_days(12.0);

    let stage1_range = WindowRange::new(WindowIndex(0), WindowIndex(5 * 720));
    let stage2_range = WindowRange::new(WindowIndex(7 * 720), WindowIndex(12 * 720));
    let obs1 = PoolObservations::collect(sim.store(), pool, stage1_range)?;
    let obs2 = PoolObservations::collect(sim.store(), pool, stage2_range)?;

    let stage1 = percentiles(&obs1)?;
    let stage2 = percentiles(&obs2)?;

    let cpu_fit = CpuModel::fit(&obs1)?;
    let cpu_fit_stage2 = CpuModel::fit(&obs2)?;
    let cpu_predicted = cpu_fit.predict(stage2.p95);
    let cpu_measured = cpu_fit_stage2.predict(stage2.p95);

    let latency_model = LatencyModel::fit(&obs1)?;
    let latency_predicted = latency_model.predict(stage2.p95);
    // Measured: mean stage-2 latency in windows near the p95 workload.
    let near: Vec<f64> = (0..obs2.len())
        .filter(|&i| (obs2.rps_per_server[i] - stage2.p95).abs() / stage2.p95 < 0.03)
        .map(|i| obs2.latency_p95_ms[i])
        .collect();
    let latency_measured = if near.is_empty() {
        LatencyModel::fit(&obs2)?.predict(stage2.p95)
    } else {
        near.iter().sum::<f64>() / near.len() as f64
    };

    let mut scatter = Vec::new();
    for (stage, obs) in [(1u8, &obs1), (2u8, &obs2)] {
        for i in 0..obs.len() {
            if obs.windows[i].0 % 3 == 0 {
                scatter.push((stage, obs.rps_per_server[i], obs.cpu_pct[i], obs.latency_p95_ms[i]));
            }
        }
    }

    Ok(PoolBReport {
        stage1,
        stage2,
        cpu_fit,
        cpu_fit_stage2,
        cpu_predicted,
        cpu_measured,
        latency_coeffs: latency_model.poly.coeffs().to_vec(),
        latency_predicted,
        latency_measured,
        scatter,
    })
}

impl PoolBReport {
    /// CSV export: Table II plus the Fig. 8/9 scatters.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "table2_rps_percentiles".into(),
                headers: vec!["stage".into(), "p50".into(), "p75".into(), "p95".into()],
                rows: vec![
                    vec![
                        "original".into(),
                        format!("{:.1}", self.stage1.p50),
                        format!("{:.1}", self.stage1.p75),
                        format!("{:.1}", self.stage1.p95),
                    ],
                    vec![
                        "30pct_reduction".into(),
                        format!("{:.1}", self.stage2.p50),
                        format!("{:.1}", self.stage2.p75),
                        format!("{:.1}", self.stage2.p95),
                    ],
                ],
            },
            CsvTable {
                name: "fig08_09_scatter".into(),
                headers: vec![
                    "stage".into(),
                    "rps_per_server".into(),
                    "cpu_pct".into(),
                    "latency_ms".into(),
                ],
                rows: self
                    .scatter
                    .iter()
                    .map(|(s, r, c, l)| {
                        vec![s.to_string(), format!("{r:.1}"), format!("{c:.2}"), format!("{l:.2}")]
                    })
                    .collect(),
            },
        ]
    }
}

impl fmt::Display for PoolBReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II + Figs. 8-9: pool B 30% reduction experiment")?;
        let pct_rows = vec![
            vec![
                "Original".into(),
                format!("{:.1}", self.stage1.p50),
                format!("{:.1}", self.stage1.p75),
                format!("{:.1}", self.stage1.p95),
                "249.5/309.3/376.8".into(),
            ],
            vec![
                "30% reduction".into(),
                format!("{:.1}", self.stage2.p50),
                format!("{:.1}", self.stage2.p75),
                format!("{:.1}", self.stage2.p95),
                "390.4/461.1/540.3".into(),
            ],
            vec![
                "% change".into(),
                format!("{:.0}%", (self.stage2.p50 / self.stage1.p50 - 1.0) * 100.0),
                format!("{:.0}%", (self.stage2.p75 / self.stage1.p75 - 1.0) * 100.0),
                format!("{:.0}%", (self.stage2.p95 / self.stage1.p95 - 1.0) * 100.0),
                "56%/49%/43%".into(),
            ],
        ];
        writeln!(f, "{}", render_table(&["Stage", "p50", "p75", "p95", "Paper"], &pct_rows))?;
        writeln!(f, "Fig. 8 (CPU):")?;
        writeln!(f, "  stage-1 fit : {}   (paper: y=0.028x+1.37, R2=0.984)", self.cpu_fit.fit)?;
        writeln!(
            f,
            "  stage-2 fit : {}   (paper: y=0.029x+1.7,  R2=0.99)",
            self.cpu_fit_stage2.fit
        )?;
        writeln!(
            f,
            "  @p95 stage2 : predicted {:.1}% vs measured {:.1}%  (paper 16.5 vs 17.4)",
            self.cpu_predicted, self.cpu_measured
        )?;
        writeln!(f, "Fig. 9 (latency):")?;
        writeln!(
            f,
            "  stage-1 quad: [{:.2}, {:.4}, {:.3e}]  (paper 36.68, -0.031, 4.028e-5)",
            self.latency_coeffs[0], self.latency_coeffs[1], self.latency_coeffs[2]
        )?;
        writeln!(
            f,
            "  @p95 stage2 : predicted {:.1} ms vs measured {:.1} ms  (paper 31.5 vs 30.9)",
            self.latency_predicted, self.latency_measured
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_pool_b_experiment_shape() {
        let r = run(&Scale::quick()).unwrap();
        // Table II shape: ~+43% per-server workload at every percentile.
        let change_p95 = r.stage2.p95 / r.stage1.p95 - 1.0;
        assert!((change_p95 - 0.43).abs() < 0.06, "p95 change {change_p95:.2}");
        // Fig. 8: the stage-1 line matches the service's true response.
        assert!((r.cpu_fit.fit.slope - 0.028).abs() < 0.003, "slope {}", r.cpu_fit.fit.slope);
        assert!(r.cpu_fit.fit.r_squared > 0.95);
        // Forecast accuracy within ~6% like the paper's 16.5-vs-17.4.
        let cpu_err = (r.cpu_predicted - r.cpu_measured).abs() / r.cpu_measured;
        assert!(cpu_err < 0.06, "cpu err {cpu_err:.3}");
        // Fig. 9: latency forecast within ~5%.
        let lat_err = (r.latency_predicted - r.latency_measured).abs() / r.latency_measured;
        assert!(lat_err < 0.05, "lat err {lat_err:.3}");
        // And the absolute values sit in the paper's range.
        assert!((r.latency_predicted - 31.5).abs() < 3.0, "{}", r.latency_predicted);
    }
}
