//! Fig. 16 + §III-C — offline regression analysis catching a hidden defect.
//!
//! Paper: a change that fixed a memory leak was validated offline; the
//! system "confirmed the change fixed the memory leak, though found it
//! introduced a new defect causing a significant increase in latency of the
//! server pool under higher workloads". Fig. 16 shows the per-workload
//! latency box plots for baseline vs change.

use std::error::Error;
use std::fmt;

use headroom_cluster::regression_lab::RegressionLab;
use headroom_cluster::ServiceModel;
use headroom_core::offline::{analyze_ab, AbReport};
use headroom_core::report::render_table;
use headroom_workload::stepped::SteppedLoad;

use crate::csv::CsvTable;
use crate::Scale;

/// Latency SLO used for the capacity-change computation.
pub const LATENCY_SLO_MS: f64 = 40.0;

/// The Fig. 16 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Report {
    /// Box-plot rows: `(rps, which, min, q1, median, q3, max)`.
    pub boxes: Vec<(f64, &'static str, f64, f64, f64, f64, f64)>,
    /// The regression analysis verdict.
    pub analysis: AbReport,
}

/// Runs the offline A/B validation of the leak fix with the hidden
/// high-load latency defect.
///
/// # Errors
///
/// Propagates lab and analysis failures.
pub fn run(scale: &Scale) -> Result<Fig16Report, Box<dyn Error>> {
    let baseline = ServiceModel::paper_pool_b().with_leak(2.5);
    let candidate = ServiceModel::paper_pool_b().with_latency_quadratic_scaled(8.0);
    let ramp = SteppedLoad::new(60.0, 70.0, 9, (scale.observe_windows() / 36).max(8) as usize);
    let lab = RegressionLab {
        pool_size: (scale.pool_servers / 5).max(4),
        ..RegressionLab::new(baseline, candidate, ramp, scale.seed)
    };
    let result = lab.run();
    let analysis = analyze_ab(&result, LATENCY_SLO_MS)?;

    let mut boxes = Vec::new();
    for (which, steps) in [("baseline", &result.baseline), ("change", &result.candidate)] {
        for step in steps {
            let (min, q1, med, q3, max) = step.latency_box();
            boxes.push((step.rps_per_server, which, min, q1, med, q3, max));
        }
    }
    Ok(Fig16Report { boxes, analysis })
}

impl Fig16Report {
    /// CSV export of the box plots.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "fig16_latency_boxes".into(),
            headers: vec![
                "rps_per_server".into(),
                "pool".into(),
                "min".into(),
                "q1".into(),
                "median".into(),
                "q3".into(),
                "max".into(),
            ],
            rows: self
                .boxes
                .iter()
                .map(|(rps, which, min, q1, med, q3, max)| {
                    vec![
                        format!("{rps:.0}"),
                        which.to_string(),
                        format!("{min:.2}"),
                        format!("{q1:.2}"),
                        format!("{med:.2}"),
                        format!("{q3:.2}"),
                        format!("{max:.2}"),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for Fig16Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 16: offline A/B regression test (leak fix with hidden defect)")?;
        let rows: Vec<Vec<String>> = self
            .analysis
            .steps
            .iter()
            .map(|s| {
                vec![
                    format!("{:.0}", s.rps_per_server),
                    format!("{:.2}", s.baseline_ms),
                    format!("{:.2}", s.candidate_ms),
                    format!("{:+.2}", s.delta_ms),
                    if s.significant { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["RPS/server", "Baseline ms", "Change ms", "Delta", "Significant"],
                &rows
            )
        )?;
        writeln!(
            f,
            "leak: baseline {:+.1} MB/step, change {:+.1} MB/step -> fixed: {}",
            self.analysis.baseline_leak_mb_per_step,
            self.analysis.candidate_leak_mb_per_step,
            self.analysis.leak_fixed()
        )?;
        writeln!(
            f,
            "latency regression detected: {} | capacity change: {:+.1}% | verdict: {}",
            self.analysis.latency_regression,
            self.analysis.capacity_change * 100.0,
            if self.analysis.should_block() { "BLOCK DEPLOYMENT" } else { "pass" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catches_the_papers_defect() {
        let r = run(&Scale::quick()).unwrap();
        assert!(r.analysis.leak_fixed(), "the change really fixes the leak");
        assert!(r.analysis.latency_regression, "and hides a latency defect");
        assert!(r.analysis.should_block());
        assert!(r.analysis.capacity_change < 0.0);
        // Boxes exist for both pools at every step.
        assert_eq!(r.boxes.len(), 2 * 9);
        // Divergence grows with load.
        let first = &r.analysis.steps[0];
        let last = r.analysis.steps.last().unwrap();
        assert!(last.delta_ms > first.delta_ms + 3.0);
    }
}
