//! Figs. 14–15 — server and pool availability distributions.
//!
//! Paper: mean daily availability 83%, "most servers are online at least 80%
//! of the time, with a large population at 85% and 98%"; pool availability
//! is consistent within a pool (D and H at 98%, C at 90%) with occasional
//! major-unavailability days (Fig. 15).

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::RecordingPolicy;
use headroom_core::report::render_table;
use headroom_stats::histogram::Histogram;
use headroom_telemetry::availability::AvailabilityBreakdown;

use crate::csv::CsvTable;
use crate::Scale;

/// The Figs. 14–15 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1415Report {
    /// Fleet-mean daily availability (paper: 83%).
    pub fleet_mean: f64,
    /// Availability of the well-managed population (paper: 98%).
    pub well_managed: f64,
    /// Capacity reclaimable by fixing maintenance practice (paper: ~15%).
    pub improvable: f64,
    /// Fig. 14 histogram `(availability bin center, fraction of server-days)`.
    pub histogram: Vec<(f64, f64)>,
    /// Fig. 15 series: `(pool letter, day, availability)` for pools C, D, H.
    pub pool_series: Vec<(char, u64, f64)>,
}

/// Runs the availability study.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(scale: &Scale) -> Result<Fig1415Report, Box<dyn Error>> {
    let outcome = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .with_recording(RecordingPolicy::AvailabilityOnly)
        .run_days(scale.availability_days)?;
    let log = outcome.availability();

    let mut histogram = Histogram::new(0.0, 1.0, 40)?;
    for (_, _, a) in log.daily_records() {
        histogram.add(a);
    }
    let breakdown = AvailabilityBreakdown::from_log(log).ok_or("empty availability log")?;

    let mut pool_series = Vec::new();
    let days = scale.availability_days.min(14.0) as u64;
    for (letter, kind) in
        [('C', MicroserviceKind::C), ('D', MicroserviceKind::D), ('H', MicroserviceKind::H)]
    {
        // The paper plots one representative pool per service.
        if let Some(&pool) = outcome.fleet().pools_of_service(kind).first() {
            let members = outcome.store().servers_in_pool(pool).to_vec();
            // AvailabilityOnly stores no counters, so membership comes from
            // the fleet itself when the store is empty.
            let members = if members.is_empty() {
                outcome.fleet().pool(pool).map(|p| p.server_ids()).unwrap_or_default()
            } else {
                members
            };
            for (day, a) in log.pool_daily_series(&members, days) {
                pool_series.push((letter, day, a));
            }
        }
    }

    Ok(Fig1415Report {
        fleet_mean: breakdown.mean,
        well_managed: breakdown.well_managed,
        improvable: breakdown.improvable,
        histogram: histogram.series(),
        pool_series,
    })
}

impl Fig1415Report {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable::from_xy(
                "fig14_availability_distribution",
                "daily_availability",
                "fraction_of_server_days",
                &self.histogram,
            ),
            CsvTable {
                name: "fig15_pool_availability".into(),
                headers: vec!["pool".into(), "day".into(), "availability".into()],
                rows: self
                    .pool_series
                    .iter()
                    .map(|(p, d, a)| vec![p.to_string(), d.to_string(), format!("{a:.4}")])
                    .collect(),
            },
        ]
    }

    /// Mean availability of one plotted pool.
    pub fn pool_mean(&self, letter: char) -> Option<f64> {
        let values: Vec<f64> =
            self.pool_series.iter().filter(|(p, _, _)| *p == letter).map(|(_, _, a)| *a).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

impl fmt::Display for Fig1415Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figs. 14-15: availability study")?;
        let fmt_pool = |l: char| {
            self.pool_mean(l).map(|a| format!("{:.1}%", a * 100.0)).unwrap_or_else(|| "-".into())
        };
        let rows = vec![
            vec![
                "fleet mean availability".into(),
                format!("{:.1}%", self.fleet_mean * 100.0),
                "83%".into(),
            ],
            vec![
                "well-managed level".into(),
                format!("{:.1}%", self.well_managed * 100.0),
                "98%".into(),
            ],
            vec![
                "improvable capacity".into(),
                format!("{:.1}%", self.improvable * 100.0),
                "~15%".into(),
            ],
            vec!["pool C mean".into(), fmt_pool('C'), "90%".into()],
            vec!["pool D mean".into(), fmt_pool('D'), "98%".into()],
            vec!["pool H mean".into(), fmt_pool('H'), "98%".into()],
        ];
        write!(f, "{}", render_table(&["Quantity", "Measured", "Paper"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_populations_match_paper() {
        let r = run(&Scale::quick()).unwrap();
        // Fleet mean well below the well-managed level.
        assert!(r.fleet_mean < r.well_managed);
        assert!(r.fleet_mean > 0.75 && r.fleet_mean < 0.97, "mean {:.3}", r.fleet_mean);
        assert!((r.well_managed - 0.98).abs() < 0.015, "wm {:.3}", r.well_managed);
        // Pool-level means: C ≈ 90%, D and H ≈ 98%.
        let c = r.pool_mean('C').unwrap();
        let d = r.pool_mean('D').unwrap();
        let h = r.pool_mean('H').unwrap();
        assert!((c - 0.905).abs() < 0.04, "C {:.3}", c);
        assert!((d - 0.98).abs() < 0.03, "D {:.3}", d);
        assert!((h - 0.98).abs() < 0.03, "H {:.3}", h);
        // Histogram is a distribution.
        let total: f64 = r.histogram.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
