//! The columnar↔row bit-identity gate for the whole simulator→ingestion
//! pipeline.
//!
//! Not a paper artifact: `repro colsim` is the acceptance gate of the
//! struct-of-arrays snapshot pipeline. The columnar data path
//! (`Simulation::step_columns_partitioned` →
//! `SweepEngine::observe_columns`) and the streamed data path
//! (`Simulation::step_streamed` → `SweepEngine::observe_streamed`, which
//! generates metric columns tile-at-a-time inside the sweep) must both be
//! pure *layout* changes — same RNG stream, same stored counters, same
//! planner decisions, byte for byte. Three contracts are checked, and any
//! violation fails the experiment (and CI):
//!
//! 1. **simulator identity** — for every [`RecordingPolicy`], a row-stepped
//!    simulation and a columnar-stepped twin produce bit-identical
//!    snapshots window by window (columns converted back to rows), the
//!    same pool partition, the same metric store contents, and the same
//!    availability log;
//! 2. **planner identity** — driving the paper-shaped fleet end to end,
//!    the columnar *and* streamed pipelines each yield assessments and
//!    recommendations bit-identical to the legacy row pipeline at *every*
//!    fan-out width 1–8 and in both [`SweepExec`] modes;
//! 3. **zero steady-state allocation** — a warmed, non-replan columnar or
//!    streamed window must not touch the heap, exactly like the row path.
//!    Counted (and enforced) when the `repro` binary's counting allocator
//!    is installed; inert under plain `cargo test`.
//!
//! The report also times the bare simulator step (no planner) in both
//! layouts, so per-window regressions can be attributed to the simulator
//! or the planner layer at a glance.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{RecordingPolicy, SnapshotLayout};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track;
use headroom_online::planner::{OnlinePlannerConfig, ResizeRecommendation, SweepExec};
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::time::{WindowIndex, WindowRange};

use crate::csv::CsvTable;
use crate::Scale;

/// Fan-out widths the planner-identity grid sweeps.
pub const IDENTITY_THREADS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Snapshot layouts checked against the sequential row-path reference.
pub const IDENTITY_PATHS: [(SnapshotLayout, &str); 2] =
    [(SnapshotLayout::Columnar, "columns"), (SnapshotLayout::Streamed, "streamed")];

/// One recording policy's simulator-identity verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRow {
    /// Recording policy checked.
    pub policy: &'static str,
    /// Windows driven in lockstep.
    pub windows: u64,
    /// Whether every window's snapshot (and final partition) matched
    /// bit-for-bit.
    pub snapshots_identical: bool,
    /// Whether the recorded stores and availability logs matched.
    pub state_identical: bool,
}

/// One planner-identity grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCell {
    /// Snapshot layout of the checked engine (`columns` or `streamed`).
    pub path: &'static str,
    /// Fan-out width of the checked engine.
    pub threads: usize,
    /// Execution mode of the checked engine.
    pub exec: &'static str,
    /// Whether assessments and recommendations matched the sequential
    /// row-path reference bit-for-bit.
    pub identical: bool,
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct ColsimReport {
    /// Pools in the identity fleet.
    pub pools: usize,
    /// Servers in the identity fleet.
    pub servers: usize,
    /// Windows of the planner-identity drives.
    pub windows: u64,
    /// Per-policy simulator identity.
    pub policies: Vec<PolicyRow>,
    /// Planner identity across widths and exec modes.
    pub engine_cells: Vec<EngineCell>,
    /// Mean bare simulator step, row layout (no planner attached).
    pub sim_step_rows: Duration,
    /// Mean bare simulator step, columnar layout.
    pub sim_step_cols: Duration,
    /// Mean bare streamed step prefix (demand sampling + noise draws; the
    /// kernels themselves run inside the sweep, so this is *not*
    /// comparable to the materialised step costs — the sweep experiment's
    /// `sim_kernel` pass carries the rest).
    pub sim_step_streamed: Duration,
    /// Heap allocations over 10 warmed non-replan columnar windows (must
    /// be 0 when `alloc_tracking`).
    pub steady_state_allocs: u64,
    /// Heap allocations over 10 warmed non-replan streamed windows (must
    /// be 0 when `alloc_tracking`).
    pub streamed_steady_state_allocs: u64,
    /// Whether the counting allocator was installed.
    pub alloc_tracking: bool,
}

impl ColsimReport {
    /// Whether every contract held.
    pub fn all_identical(&self) -> bool {
        self.policies.iter().all(|p| p.snapshots_identical && p.state_identical)
            && self.engine_cells.iter().all(|c| c.identical)
    }
}

/// Lockstep row-vs-columnar drive of one recording policy.
fn check_policy(
    policy: RecordingPolicy,
    name: &'static str,
    windows: u64,
    scale: &Scale,
) -> PolicyRow {
    let mk = || {
        FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
            .with_recording(policy)
            .into_simulation()
    };
    let mut rows_sim = mk();
    let mut cols_sim = mk();
    let mut buf = Vec::new();
    let mut snapshots_identical = true;
    for _ in 0..windows {
        let row_snap = rows_sim.step_snapshot_partitioned();
        let expect_rows = row_snap.rows.to_vec();
        let expect_slices = row_snap.pools.to_vec();
        let col_snap = cols_sim.step_columns_partitioned();
        col_snap.columns.to_rows(&mut buf);
        snapshots_identical &= buf == expect_rows && col_snap.pools == &expect_slices[..];
    }
    // Recorded state: total sample counts (which include tagged series),
    // per-pool mean series of *every* counter kind, and the availability
    // log. Together with the per-window row identity above this pins the
    // store contents: same sample population, same values per pool/window
    // for all twelve counters.
    let range = WindowRange::new(WindowIndex(0), WindowIndex(windows));
    let mut state_identical = rows_sim.store().sample_count() == cols_sim.store().sample_count()
        && rows_sim.availability().fleet_mean_availability()
            == cols_sim.availability().fleet_mean_availability();
    for pool in rows_sim.fleet().pools() {
        for counter in CounterKind::ALL {
            state_identical &= rows_sim.store().pool_mean_series(pool.id, counter, range)
                == cols_sim.store().pool_mean_series(pool.id, counter, range);
        }
    }
    PolicyRow { policy: name, windows, snapshots_identical, state_identical }
}

/// Per-pool QoS from the catalog, as the sweep experiment derives it.
fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

/// Drives the paper fleet end to end and returns the planner's outputs
/// (assessments snapshotted to an owned map) plus the mean bare step cost.
fn drive_engine(
    layout: SnapshotLayout,
    threads: usize,
    exec: SweepExec,
    windows: u64,
    scale: &Scale,
) -> (
    std::collections::BTreeMap<
        headroom_telemetry::ids::PoolId,
        headroom_online::planner::PoolAssessment,
    >,
    Vec<ResizeRecommendation>,
    Duration,
) {
    let scenario = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .with_recording(RecordingPolicy::SnapshotOnly);
    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180.min(windows as usize / 2),
        threads,
        exec,
        ..OnlinePlannerConfig::default()
    };
    let mut sim = scenario.into_simulation();
    let mut engine = engine_for(sim.fleet(), config);
    let mut recs = Vec::new();
    let mut stepping = Duration::ZERO;
    for _ in 0..windows {
        match layout {
            SnapshotLayout::Streamed => {
                let t = Instant::now();
                let win = sim.step_streamed();
                stepping += t.elapsed();
                engine.observe_streamed(&win);
            }
            SnapshotLayout::Columnar => {
                let t = Instant::now();
                let snap = sim.step_columns_partitioned();
                stepping += t.elapsed();
                engine.observe_columns(&snap);
            }
            SnapshotLayout::Rows => {
                let t = Instant::now();
                let snap = sim.step_snapshot_partitioned();
                stepping += t.elapsed();
                engine.observe_partitioned(&snap);
            }
        }
        recs.extend(engine.drain_recommendations());
    }
    (engine.assessments().to_map(), recs, stepping / windows.max(1) as u32)
}

/// Runs the three colsim contracts.
///
/// # Errors
///
/// Fails outright on any identity violation and — when the counting
/// allocator is installed — on a nonzero columnar steady-state allocation
/// count. These are acceptance criteria; a CI smoke run must go red.
pub fn run(scale: &Scale) -> Result<ColsimReport, Box<dyn Error>> {
    let windows = scale.observe_windows();
    let probe = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    // Contract 1: simulator identity per recording policy. Full records
    // ~15 counters per server-window; a shorter lockstep keeps it cheap
    // without weakening the bit-identity claim.
    let policy_windows = windows.min(240);
    let policies = vec![
        check_policy(RecordingPolicy::Workload, "workload", policy_windows, scale),
        check_policy(RecordingPolicy::SnapshotOnly, "snapshot_only", policy_windows, scale),
        check_policy(RecordingPolicy::Full, "full", policy_windows.min(60), scale),
        check_policy(RecordingPolicy::AvailabilityOnly, "availability_only", policy_windows, scale),
    ];

    // Contract 2: planner identity. Reference: sequential row pipeline;
    // checked: the columnar and streamed pipelines across the full grid.
    let (ref_assessments, ref_recs, sim_step_rows) =
        drive_engine(SnapshotLayout::Rows, 1, SweepExec::Persistent, windows, scale);
    let mut engine_cells = Vec::new();
    let mut sim_step_cols = Duration::ZERO;
    let mut sim_step_streamed = Duration::ZERO;
    for (layout, path) in IDENTITY_PATHS {
        for &threads in &IDENTITY_THREADS {
            for (exec, exec_name) in
                [(SweepExec::Persistent, "persistent"), (SweepExec::Scoped, "scoped")]
            {
                let (assessments, recs, step) = drive_engine(layout, threads, exec, windows, scale);
                if threads == 1 && exec == SweepExec::Persistent {
                    match layout {
                        SnapshotLayout::Columnar => sim_step_cols = step,
                        SnapshotLayout::Streamed => sim_step_streamed = step,
                        SnapshotLayout::Rows => {}
                    }
                }
                engine_cells.push(EngineCell {
                    path,
                    threads,
                    exec: exec_name,
                    identical: assessments == ref_assessments && recs == ref_recs,
                });
            }
        }
    }

    // Contract 3: columnar and streamed zero-allocation steady state, on
    // the shared fixture (crate::alloc_fixture) the row-path gate also
    // measures.
    let alloc_tracking = alloc_track::is_tracking();
    let steady_state_allocs =
        crate::alloc_fixture::measure_steady_state_allocs(2, SnapshotLayout::Columnar);
    let streamed_steady_state_allocs =
        crate::alloc_fixture::measure_steady_state_allocs(2, SnapshotLayout::Streamed);

    let report = ColsimReport {
        pools,
        servers,
        windows,
        policies,
        engine_cells,
        sim_step_rows,
        sim_step_cols,
        sim_step_streamed,
        steady_state_allocs,
        streamed_steady_state_allocs,
        alloc_tracking,
    };
    if !report.all_identical() {
        return Err(format!(
            "columnar/streamed pipeline diverged from the row pipeline:\n{report}"
        )
        .into());
    }
    if alloc_tracking && (steady_state_allocs > 0 || streamed_steady_state_allocs > 0) {
        return Err(format!(
            "steady-state window path allocated (columns {steady_state_allocs}, streamed \
             {streamed_steady_state_allocs}) — the zero-allocation contract is broken:\n{report}"
        )
        .into());
    }
    Ok(report)
}

impl ColsimReport {
    /// CSV export of both identity grids.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "colsim_policies".into(),
                headers: vec![
                    "policy".into(),
                    "windows".into(),
                    "snapshots_identical".into(),
                    "state_identical".into(),
                ],
                rows: self
                    .policies
                    .iter()
                    .map(|p| {
                        vec![
                            p.policy.to_string(),
                            p.windows.to_string(),
                            p.snapshots_identical.to_string(),
                            p.state_identical.to_string(),
                        ]
                    })
                    .collect(),
            },
            CsvTable {
                name: "colsim_engines".into(),
                headers: vec!["path".into(), "threads".into(), "exec".into(), "identical".into()],
                rows: self
                    .engine_cells
                    .iter()
                    .map(|c| {
                        vec![
                            c.path.to_string(),
                            c.threads.to_string(),
                            c.exec.to_string(),
                            c.identical.to_string(),
                        ]
                    })
                    .collect(),
            },
        ]
    }
}

impl fmt::Display for ColsimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Columnar snapshot pipeline identity: {} pools / {} servers, {} windows",
            self.pools, self.servers, self.windows
        )?;
        let rows: Vec<Vec<String>> = self
            .policies
            .iter()
            .map(|p| {
                vec![
                    p.policy.to_string(),
                    p.windows.to_string(),
                    if p.snapshots_identical { "yes".into() } else { "NO".into() },
                    if p.state_identical { "yes".into() } else { "NO".into() },
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(&["Policy", "Windows", "Snapshots identical", "State identical"], &rows)
        )?;
        let bad: Vec<String> = self
            .engine_cells
            .iter()
            .filter(|c| !c.identical)
            .map(|c| format!("{}x{}x{}", c.path, c.threads, c.exec))
            .collect();
        writeln!(
            f,
            "planner identity over {{columns, streamed}} x threads 1-8 x {{persistent, scoped}} \
             ({} cells): {}",
            self.engine_cells.len(),
            if bad.is_empty() { "all identical".to_string() } else { format!("DIVERGED: {bad:?}") }
        )?;
        writeln!(
            f,
            "bare simulator step: rows {:?}/window, columns {:?}/window, streamed prefix \
             {:?}/window (kernels run inside the sweep)",
            self.sim_step_rows, self.sim_step_cols, self.sim_step_streamed
        )?;
        writeln!(
            f,
            "steady-state allocations/10 windows: columns {}, streamed {}{}",
            self.steady_state_allocs,
            self.streamed_steady_state_allocs,
            if self.alloc_tracking {
                " (counted — must be 0)"
            } else {
                " (allocator not installed; run via `repro` to count)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colsim_gate_passes_at_quick_scale() {
        let scale = Scale { observe_days: 0.5, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.pools, 81, "paper-shaped fleet");
        assert!(r.all_identical(), "columnar != rows: {r}");
        assert_eq!(r.policies.len(), 4, "every recording policy checked");
        assert_eq!(r.engine_cells.len(), 32, "both paths x threads 1-8 x both exec modes");
        for path in ["columns", "streamed"] {
            assert_eq!(
                r.engine_cells.iter().filter(|c| c.path == path).count(),
                16,
                "full grid for the {path} path"
            );
        }
        assert!(r.sim_step_rows > Duration::ZERO && r.sim_step_cols > Duration::ZERO);
        assert!(r.sim_step_streamed > Duration::ZERO, "streamed prefix timed");
        assert!(!r.alloc_tracking, "plain cargo test has no counting allocator");
    }
}
