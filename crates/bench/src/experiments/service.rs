//! The planner-as-a-service acceptance gate.
//!
//! Not a paper artifact: `repro service` is the CI gate of the
//! `headroom-service` control plane. Three contracts are checked, and any
//! violation fails the experiment (and CI):
//!
//! 1. **kill-and-restore** — on the paper-shaped fleet, a planner
//!    checkpointed at a mid-run window and restored into a *fresh* engine
//!    must emit recommendations byte-identical (via the `Persist`
//!    encoding, not just `==`) to the uninterrupted reference for the whole
//!    remainder of the run, and land on the same final checkpoint bytes.
//!    Checked for every [`RecordingPolicy`], with the restored side swept
//!    over threads 1–8 in both [`SweepExec`] modes. Two checkpoint windows
//!    are exercised per policy: one *inside* the warm-up (so the
//!    post-warm-up recommendation burst is in the compared remainder —
//!    a restore that lost history would emit it late), and one past
//!    warm-up with dwell hysteresis active (so pending dwell state rides
//!    in the checkpoint). One further cell kills the planner *during an
//!    active `DatacenterLoss`* (the adversarial regional-failover
//!    scenario on the small fixture fleet) — restores must resume
//!    byte-identically mid-emergency too;
//! 2. **log replay** — replaying the reference run's event log through a
//!    fresh engine re-derives its recommendations and final checkpoint
//!    bytes exactly;
//! 3. **reconciliation** — the reconciler converges every pool of a live
//!    simulation to its recommended target despite injected apply
//!    failures (the first two applies of every pool fail), with the
//!    simulator's real actuation latency in the loop.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{RecordingPolicy, Simulation};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_online::planner::{
    OnlinePlannerConfig, PoolWindowAggregate, ResizeRecommendation, SweepExec,
};
use headroom_online::sweep::SweepEngine;
use headroom_service::checkpoint;
use headroom_service::event_log::{replay, EventLog};
use headroom_service::reconcile::{
    ActuationError, Actuator, Reconciler, ReconcilerConfig, SimActuator,
};
use headroom_stats::persist::{Persist, Writer};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;
use headroom_workload::scenarios;

use crate::csv::CsvTable;
use crate::Scale;

/// Fan-out widths the restored side is swept over.
pub const RESTORE_THREADS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// One recording policy's kill-and-restore verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyGateRow {
    /// Recording policy of the simulation that produced the stream.
    pub policy: &'static str,
    /// Windows driven end to end.
    pub windows: u64,
    /// The two checkpoint (kill) windows exercised.
    pub checkpoint_windows: [u64; 2],
    /// Checkpoint size at the later (post-warm-up) kill window, bytes.
    pub checkpoint_bytes: usize,
    /// Recommendations the reference emitted after the earlier kill window
    /// (the compared remainder).
    pub recommendations_after: usize,
    /// Restore cells (kill window × threads × exec) that matched the
    /// reference byte-for-byte.
    pub cells_identical: usize,
    /// Restore cells checked.
    pub cells_total: usize,
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Pools in the fleet.
    pub pools: usize,
    /// Servers in the fleet.
    pub servers: usize,
    /// Per-policy kill-and-restore verdicts.
    pub policies: Vec<PolicyGateRow>,
    /// Whether log replay re-derived the reference run exactly.
    pub replay_identical: bool,
    /// Events in the replayed log.
    pub replay_events: usize,
    /// Scenario driven for the scenario-active kill cell.
    pub scenario_kill_name: &'static str,
    /// Window the scenario-active checkpoint was taken (inside the loss).
    pub scenario_kill_window: u64,
    /// Scenario-active restore cells matching the reference byte-for-byte.
    pub scenario_kill_cells_identical: usize,
    /// Scenario-active restore cells checked.
    pub scenario_kill_cells_total: usize,
    /// Pools the reconciler managed.
    pub reconcile_pools: usize,
    /// Ticks the reconciler needed to converge every pool.
    pub reconcile_ticks: u64,
    /// Apply failures injected while it did.
    pub reconcile_injected_failures: u64,
    /// Whether every pool reached `Converged`.
    pub reconcile_converged: bool,
}

impl ServiceReport {
    /// Whether every contract held.
    pub fn all_pass(&self) -> bool {
        self.policies.iter().all(|p| p.cells_identical == p.cells_total)
            && self.scenario_kill_cells_identical == self.scenario_kill_cells_total
            && self.replay_identical
            && self.reconcile_converged
    }
}

/// Per-pool QoS from the catalog, as the sweep experiments derive it.
fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

/// The `Persist` encoding of one window's drained recommendations — the
/// byte-identity unit the gate compares on.
fn rec_bytes(recs: &[ResizeRecommendation]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(recs.len());
    for r in recs {
        r.persist(&mut w);
    }
    w.into_bytes()
}

/// One policy's recorded observation stream plus the uninterrupted
/// reference run over it.
struct ReferenceRun {
    /// Per-window pool aggregates, index = window.
    stream: Vec<Vec<(PoolId, PoolWindowAggregate)>>,
    /// Checkpoints taken at each kill window.
    checkpoints: Vec<(u64, Vec<u8>)>,
    /// Per-window recommendation bytes, index = window.
    recs: Vec<Vec<u8>>,
    /// Final engine state (threads 1, persistent).
    final_checkpoint: Vec<u8>,
    /// The full input/output event log.
    log: EventLog,
    /// The reference config (restored engines re-derive it from the
    /// checkpoint; replay needs it to build a fresh engine).
    config: OnlinePlannerConfig,
}

/// Drives one policy's simulation end to end, checkpointing at each kill
/// window, logging every input and output.
fn reference_run(
    policy: RecordingPolicy,
    windows: u64,
    kill_windows: [u64; 2],
    scale: &Scale,
) -> ReferenceRun {
    let mut sim = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .with_recording(policy)
        .into_simulation();
    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: (windows as usize / 2).min(180),
        // Dwell hysteresis on, so checkpoints at the later kill window
        // carry pending (dwell-suppressed) recommendations.
        dwell_windows: 2,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = engine_for(sim.fleet(), config);
    let mut out = ReferenceRun {
        stream: Vec::with_capacity(windows as usize),
        checkpoints: Vec::new(),
        recs: Vec::with_capacity(windows as usize),
        final_checkpoint: Vec::new(),
        log: EventLog::new(),
        config,
    };
    for w in 0..windows {
        if kill_windows.contains(&w) {
            out.checkpoints.push((w, checkpoint::save(&engine)));
        }
        let snap = sim.step_snapshot();
        let aggregates = PoolWindowAggregate::from_snapshot(&snap);
        out.log.record_observations(WindowIndex(w), &aggregates);
        engine.observe_aggregates(WindowIndex(w), &aggregates);
        let recs = engine.drain_recommendations();
        out.log.record_recommendations(&recs);
        out.recs.push(rec_bytes(&recs));
        out.stream.push(aggregates);
    }
    out.final_checkpoint = checkpoint::save(&engine);
    out
}

/// Restores one cell (kill window × threads × exec) and lockstep-compares
/// the remainder of the run against the reference, byte for byte.
fn check_cell(
    reference: &ReferenceRun,
    kill_at: u64,
    bytes: &[u8],
    threads: usize,
    exec: SweepExec,
) -> bool {
    let Ok(mut engine) = checkpoint::load(bytes) else {
        return false;
    };
    engine.set_threads(threads);
    engine.set_exec(exec);
    let mut identical = true;
    for w in kill_at..reference.stream.len() as u64 {
        engine.observe_aggregates(WindowIndex(w), &reference.stream[w as usize]);
        identical &= rec_bytes(&engine.drain_recommendations()) == reference.recs[w as usize];
    }
    // Normalize the execution knobs back to the reference's before the
    // full-state comparison — they are config, not logical planner state.
    engine.set_threads(reference.config.threads);
    engine.set_exec(reference.config.exec);
    identical && checkpoint::save(&engine) == reference.final_checkpoint
}

/// The scenario-active kill cell: drives the adversarial regional-failover
/// scenario on the small fixture fleet, checkpoints *while the
/// `DatacenterLoss` is active* (30 windows into the 60-window loss), and
/// sweeps the restore grid over the remainder. Returns
/// `(kill_window, cells_identical, cells_total)`.
fn scenario_kill_gate(scale: &Scale) -> (u64, usize, usize) {
    let sc = scenarios::regional_failover(
        scale.seed,
        crate::experiments::scenarios::FIXTURE_DATACENTERS,
    );
    let onset = sc.onset_window().0;
    // The generated loss lasts 2 h = 60 windows; kill mid-loss and keep
    // driving for an hour past the recovery.
    let kill_at = onset + 30;
    let windows = onset + 120;

    let mut sim = FleetScenario::small(scale.seed)
        .with_scenario(&sc)
        .with_recording(RecordingPolicy::SnapshotOnly)
        .into_simulation();
    let config = OnlinePlannerConfig {
        window_capacity: 240,
        min_fit_windows: 120,
        dwell_windows: 2,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = engine_for(sim.fleet(), config);
    let mut reference = ReferenceRun {
        stream: Vec::with_capacity(windows as usize),
        checkpoints: Vec::new(),
        recs: Vec::with_capacity(windows as usize),
        final_checkpoint: Vec::new(),
        log: EventLog::new(),
        config,
    };
    for w in 0..windows {
        if w == kill_at {
            reference.checkpoints.push((w, checkpoint::save(&engine)));
        }
        let snap = sim.step_snapshot();
        let aggregates = PoolWindowAggregate::from_snapshot(&snap);
        engine.observe_aggregates(WindowIndex(w), &aggregates);
        reference.recs.push(rec_bytes(&engine.drain_recommendations()));
        reference.stream.push(aggregates);
    }
    reference.final_checkpoint = checkpoint::save(&engine);

    let (kill_at, bytes) = reference.checkpoints[0].clone();
    let mut cells_identical = 0;
    let mut cells_total = 0;
    for threads in RESTORE_THREADS {
        for exec in [SweepExec::Persistent, SweepExec::Scoped] {
            cells_total += 1;
            if check_cell(&reference, kill_at, &bytes, threads, exec) {
                cells_identical += 1;
            }
        }
    }
    (kill_at, cells_identical, cells_total)
}

/// Wraps the simulator actuator, deterministically failing the first
/// `fail_first` applies of every pool.
struct InjectingActuator<'a, 'b> {
    inner: &'a mut SimActuator<'b>,
    seen: BTreeMap<PoolId, u32>,
    fail_first: u32,
    injected: u64,
}

impl Actuator for InjectingActuator<'_, '_> {
    fn apply(&mut self, pool: PoolId, target: usize) -> Result<(), ActuationError> {
        let seen = self.seen.entry(pool).or_insert(0);
        *seen += 1;
        if *seen <= self.fail_first {
            self.injected += 1;
            return Err(ActuationError("injected apply failure".into()));
        }
        self.inner.apply(pool, target)
    }

    fn actual(&self, pool: PoolId) -> Option<usize> {
        self.inner.actual(pool)
    }
}

/// Converges a live simulation to shrink-by-one targets through injected
/// apply failures. Returns (pools, ticks, injected failures, converged).
fn reconcile_gate(scale: &Scale) -> (usize, u64, u64, bool) {
    let mut sim: Simulation = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .with_recording(RecordingPolicy::AvailabilityOnly)
        .into_simulation();
    sim.run_windows(2);
    let version = sim.current_window().0;
    let targets: Vec<(PoolId, usize)> =
        sim.fleet().pools().iter().map(|p| (p.id, (p.active_count() - 1).max(1))).collect();
    let mut rc = Reconciler::new(ReconcilerConfig { max_retries: 3 });
    for &(pool, target) in &targets {
        rc.set_desired(pool, version, target).expect("fresh targets are never stale");
    }
    let mut seen = BTreeMap::new();
    let mut injected = 0;
    let mut ticks = 0;
    while !rc.converged() && ticks < 20 {
        let mut inner = SimActuator::new(&mut sim);
        let mut actuator = InjectingActuator {
            inner: &mut inner,
            seen: std::mem::take(&mut seen),
            fail_first: 2,
            injected,
        };
        rc.tick(&mut actuator);
        seen = actuator.seen;
        injected = actuator.injected;
        sim.run_windows(1);
        ticks += 1;
    }
    (targets.len(), ticks, injected, rc.converged())
}

/// Runs the three service contracts.
///
/// # Errors
///
/// Fails outright when any restore cell, the replay, or the reconciler
/// diverges — these are acceptance criteria; a CI smoke run must go red.
pub fn run(scale: &Scale) -> Result<ServiceReport, Box<dyn Error>> {
    // The kill-and-restore grid drives 2 kill windows × 16 cells per
    // policy; a bounded run keeps the gate in seconds without weakening
    // the byte-identity claim.
    let windows = scale.observe_windows().min(240);
    let min_fit = (windows / 2).min(180);
    // One kill inside warm-up (the post-warm-up burst lands in the
    // compared remainder), one past it (dwell state in flight).
    let kill_windows = [min_fit - 6, min_fit + (windows - min_fit) / 2];

    let probe = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    let named_policies = [
        (RecordingPolicy::Workload, "workload"),
        (RecordingPolicy::SnapshotOnly, "snapshot_only"),
        (RecordingPolicy::Full, "full"),
        (RecordingPolicy::AvailabilityOnly, "availability_only"),
    ];
    let mut policies = Vec::new();
    let mut replay_identical = true;
    let mut replay_events = 0;
    for (policy, name) in named_policies {
        let reference = reference_run(policy, windows, kill_windows, scale);
        let recommendations_after: usize = reference.recs[kill_windows[0] as usize..]
            .iter()
            .filter(|b| b.as_slice() != rec_bytes(&[]).as_slice())
            .count();
        let mut cells_identical = 0;
        let mut cells_total = 0;
        for &(kill_at, ref bytes) in &reference.checkpoints {
            for threads in RESTORE_THREADS {
                for exec in [SweepExec::Persistent, SweepExec::Scoped] {
                    cells_total += 1;
                    if check_cell(&reference, kill_at, bytes, threads, exec) {
                        cells_identical += 1;
                    }
                }
            }
        }
        // Contract 2, once (the log's contents are policy-independent —
        // the planner sees the same stream under every recording policy).
        if policy == RecordingPolicy::Workload {
            let fresh = engine_for(
                FleetScenario::paper_scale(scale.seed, scale.fleet_fraction).fleet(),
                reference.config,
            );
            let outcome = replay(fresh, reference.log.events());
            let mut replayed = Vec::new();
            // Replay drains per window; regroup into the per-window byte
            // framing by window index for the comparison.
            let mut by_window: BTreeMap<u64, Vec<ResizeRecommendation>> = BTreeMap::new();
            for rec in &outcome.recommendations {
                by_window.entry(rec.window.0).or_default().push(*rec);
            }
            for w in 0..windows {
                replayed.push(rec_bytes(by_window.get(&w).map(Vec::as_slice).unwrap_or(&[])));
            }
            replay_identical = replayed == reference.recs
                && checkpoint::save(&outcome.engine) == reference.final_checkpoint
                && EventLog::from_bytes(&reference.log.to_bytes()).as_ref() == Ok(&reference.log);
            replay_events = reference.log.len();
        }
        let checkpoint_bytes = reference.checkpoints.last().map(|(_, b)| b.len()).unwrap_or(0);
        policies.push(PolicyGateRow {
            policy: name,
            windows,
            checkpoint_windows: kill_windows,
            checkpoint_bytes,
            recommendations_after,
            cells_identical,
            cells_total,
        });
    }

    // The scenario-active kill cell: restore mid-DatacenterLoss.
    let (scenario_kill_window, scenario_kill_cells_identical, scenario_kill_cells_total) =
        scenario_kill_gate(scale);

    // Contract 3: reconciliation under injected failures.
    let (reconcile_pools, reconcile_ticks, reconcile_injected_failures, reconcile_converged) =
        reconcile_gate(scale);

    let report = ServiceReport {
        pools,
        servers,
        policies,
        replay_identical,
        replay_events,
        scenario_kill_name: "regional_failover",
        scenario_kill_window,
        scenario_kill_cells_identical,
        scenario_kill_cells_total,
        reconcile_pools,
        reconcile_ticks,
        reconcile_injected_failures,
        reconcile_converged,
    };
    if !report.all_pass() {
        return Err(format!("planner-as-a-service gate failed:\n{report}").into());
    }
    Ok(report)
}

impl ServiceReport {
    /// CSV export of the kill-and-restore grid.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "service_gate".into(),
            headers: vec![
                "policy".into(),
                "windows".into(),
                "kill_warmup".into(),
                "kill_steady".into(),
                "checkpoint_bytes".into(),
                "recommendations_after".into(),
                "cells_identical".into(),
                "cells_total".into(),
            ],
            rows: self
                .policies
                .iter()
                .map(|p| {
                    vec![
                        p.policy.to_string(),
                        p.windows.to_string(),
                        p.checkpoint_windows[0].to_string(),
                        p.checkpoint_windows[1].to_string(),
                        p.checkpoint_bytes.to_string(),
                        p.recommendations_after.to_string(),
                        p.cells_identical.to_string(),
                        p.cells_total.to_string(),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Planner-as-a-service gate: {} pools / {} servers", self.pools, self.servers)?;
        let rows: Vec<Vec<String>> = self
            .policies
            .iter()
            .map(|p| {
                vec![
                    p.policy.to_string(),
                    p.windows.to_string(),
                    format!("{} / {}", p.checkpoint_windows[0], p.checkpoint_windows[1]),
                    format!("{:.1} KiB", p.checkpoint_bytes as f64 / 1024.0),
                    p.recommendations_after.to_string(),
                    format!(
                        "{}/{}{}",
                        p.cells_identical,
                        p.cells_total,
                        if p.cells_identical == p.cells_total { "" } else { "  DIVERGED" }
                    ),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &["Policy", "Windows", "Kill at", "Checkpoint", "Recs after", "Cells identical"],
                &rows
            )
        )?;
        writeln!(
            f,
            "log replay ({} events): {}",
            self.replay_events,
            if self.replay_identical { "byte-identical" } else { "DIVERGED" }
        )?;
        writeln!(
            f,
            "scenario-active kill ({}, window {}): {}/{} restore cells identical{}",
            self.scenario_kill_name,
            self.scenario_kill_window,
            self.scenario_kill_cells_identical,
            self.scenario_kill_cells_total,
            if self.scenario_kill_cells_identical == self.scenario_kill_cells_total {
                ""
            } else {
                "  DIVERGED"
            }
        )?;
        writeln!(
            f,
            "reconciler: {} pools converged in {} ticks through {} injected apply failures: {}",
            self.reconcile_pools,
            self.reconcile_ticks,
            self.reconcile_injected_failures,
            if self.reconcile_converged { "yes" } else { "NO" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_gate_passes_at_quick_scale() {
        let scale = Scale { observe_days: 0.25, ..Scale::quick() };
        let r = run(&scale).unwrap();
        assert_eq!(r.pools, 81, "paper-shaped fleet");
        assert!(r.all_pass(), "service gate failed: {r}");
        assert_eq!(r.policies.len(), 4, "every recording policy checked");
        for p in &r.policies {
            assert_eq!(p.cells_total, 32, "2 kill windows x threads 1-8 x both exec modes");
            // AvailabilityOnly snapshots carry no workload counters, so the
            // planner legitimately emits nothing; the byte-identity claim
            // there is checkpoint equality alone.
            if p.policy != "availability_only" {
                assert!(
                    p.recommendations_after > 0,
                    "the compared remainder contains the warm-up burst: {r}"
                );
            }
            assert!(p.checkpoint_bytes > 0);
        }
        assert!(r.replay_events > 0);
        assert_eq!(
            r.scenario_kill_cells_total, 16,
            "scenario-active kill: threads 1-8 x both exec modes"
        );
        assert_eq!(
            r.scenario_kill_cells_identical, r.scenario_kill_cells_total,
            "mid-DatacenterLoss restore diverged: {r}"
        );
        assert!(r.reconcile_injected_failures > 0, "failures were actually injected");
        assert!(r.reconcile_ticks >= 3, "failures + actuation latency cost ticks");
    }
}
