//! Fig. 6 — the second natural experiment: one datacenter at 4× traffic.
//!
//! Paper: "DC 5 behaving as predicted when receiving 4x more requests during
//! the unplanned event" — the latency-vs-workload quadratic extrapolates to
//! workloads far beyond anything an operator would dare create, and "the
//! elevated latency at low workload is typical" (cold caches, JIT).

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::curves::{LatencyModel, PoolObservations};
use headroom_core::natural::{find_natural_experiments, verify_latency_model_holds};
use headroom_core::report::render_table;
use headroom_telemetry::ids::DatacenterId;
use headroom_telemetry::time::SimTime;
use headroom_workload::events;

use crate::csv::CsvTable;
use crate::Scale;

/// The Fig. 6 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Report {
    /// `(datacenter, rps/server, latency ms)` scatter, all DCs.
    pub points: Vec<(usize, f64, f64)>,
    /// Quadratic trend fitted to DC 5's calm windows.
    pub trend: Vec<f64>,
    /// Surge factor reached by DC 5 during the event.
    pub surge_factor: f64,
    /// Whether the trend predicted the event latencies (paper: yes).
    pub trend_holds: bool,
    /// Mean absolute latency error during the event (ms).
    pub event_error_ms: f64,
}

/// Runs the 4× surge experiment: service D in 5 DCs, DC 5 surged 4× for
/// three hours during its regional trough.
///
/// # Errors
///
/// Propagates simulation and fitting failures.
pub fn run(scale: &Scale) -> Result<Fig6Report, Box<dyn Error>> {
    // DC5 (index 4) peaks at 02:00 UTC; its trough is ~14:00 UTC. A 4x
    // surge at the trough lands on the rising branch of the quadratic
    // without saturating the pool.
    let event_start = SimTime::from_days(1.0 + 14.0 / 24.0);
    let script = events::surge_4x(DatacenterId(4), event_start, 3 * 3600);
    let outcome =
        FleetScenario::single_service(MicroserviceKind::D, 5, scale.pool_servers, scale.seed)
            .with_events(script)
            .run_days(3.0)?;

    let mut points = Vec::new();
    let mut dc5_report = None;
    for (dc, pool) in outcome.pools().into_iter().enumerate() {
        let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
        for i in 0..obs.len() {
            if obs.windows[i].0 % 3 == 0 {
                points.push((dc, obs.rps_per_server[i], obs.latency_p95_ms[i]));
            }
        }
        if dc == 4 {
            let event_lo = event_start.window().0;
            let event_hi = (event_start + 3 * 3600).window().0;
            let in_event = |w: u64| w >= event_lo && w < event_hi;
            let calm = obs.filter_by(|i| !in_event(obs.windows[i].0));
            let trend = LatencyModel::fit(&calm)?;
            let experiments = find_natural_experiments(&obs, 1.5)?;
            let best = experiments
                .iter()
                .max_by(|a, b| a.peak_rps.partial_cmp(&b.peak_rps).expect("finite"));
            // "4x the normal traffic volume": normal = the same windows one
            // day earlier.
            let event_obs = obs.filter_by(|i| in_event(obs.windows[i].0));
            let prior_obs = obs.filter_by(|i| in_event(obs.windows[i].0 + 720));
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let surge = if prior_obs.is_empty() {
                1.0
            } else {
                mean(&event_obs.rps_per_server) / mean(&prior_obs.rps_per_server)
            };
            let (holds, err) = match best {
                Some(e) => {
                    let hold = verify_latency_model_holds(&trend, &obs, e, 0.10);
                    (hold.holds, hold.mean_abs_error)
                }
                None => (false, f64::NAN),
            };
            dc5_report = Some((trend.poly.coeffs().to_vec(), surge, holds, err));
        }
    }
    let (trend, surge_factor, trend_holds, event_error_ms) =
        dc5_report.ok_or("DC5 pool missing")?;
    Ok(Fig6Report { points, trend, surge_factor, trend_holds, event_error_ms })
}

impl Fig6Report {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "fig06_latency_vs_workload".into(),
            headers: vec!["datacenter".into(), "rps_per_server".into(), "latency_ms".into()],
            rows: self
                .points
                .iter()
                .map(|(dc, x, y)| {
                    vec![format!("DC{}", dc + 1), format!("{x:.1}"), format!("{y:.2}")]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for Fig6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 6: latency vs workload with DC5 at ~4x (service D, 5 DCs)")?;
        let rows = vec![
            vec![
                "surge factor".to_string(),
                format!("{:.1}x", self.surge_factor),
                "4x".to_string(),
            ],
            vec![
                "trend".to_string(),
                format!("{:.3} {:+.3}r {:+.2e}r^2", self.trend[0], self.trend[1], self.trend[2]),
                "quadratic".to_string(),
            ],
            vec!["trend holds".to_string(), self.trend_holds.to_string(), "yes".to_string()],
            vec![
                "event |err|".to_string(),
                format!("{:.2} ms", self.event_error_ms),
                "-".to_string(),
            ],
        ];
        write!(f, "{}", render_table(&["Quantity", "Measured", "Paper"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc5_surges_4x_and_trend_holds() {
        let r = run(&Scale::quick()).unwrap();
        assert!((r.surge_factor - 4.0).abs() < 0.5, "surge {:.2}", r.surge_factor);
        assert!(r.trend_holds, "error {:.2} ms", r.event_error_ms);
        // Quadratic has positive curvature.
        assert!(r.trend[2] > 0.0);
        assert!(!r.points.is_empty());
    }
}
