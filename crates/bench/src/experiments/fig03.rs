//! Fig. 3 — scatter of 5th vs 95th percentile CPU per server for pool I.
//!
//! The paper's pool I shows "tight clusters of servers in each datacenter"
//! with one pool splitting into *two* clusters — newer, faster hardware
//! running cooler. The grouping step must detect the split.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::grouping::split_pool_groups;
use headroom_core::report::render_table;

use crate::csv::CsvTable;
use crate::Scale;

/// One pool's scatter and split result.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolScatter {
    /// Datacenter index.
    pub datacenter: usize,
    /// `(p5, p95, group)` per server.
    pub points: Vec<(f64, f64, usize)>,
    /// Number of groups found.
    pub groups: usize,
    /// Silhouette of the candidate 2-way split.
    pub silhouette: f64,
}

/// The Fig. 3 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Report {
    /// One scatter per datacenter's pool-I deployment.
    pub pools: Vec<PoolScatter>,
}

/// Runs the Fig. 3 experiment: pool I (mixed hardware) in 3 datacenters.
///
/// # Errors
///
/// Propagates simulation and grouping failures.
pub fn run(scale: &Scale) -> Result<Fig3Report, Box<dyn Error>> {
    let outcome =
        FleetScenario::single_service(MicroserviceKind::I, 3, scale.pool_servers, scale.seed)
            .run_days(scale.observe_days.min(2.0))?;
    let mut pools = Vec::new();
    for (dc, pool) in outcome.pools().into_iter().enumerate() {
        let split = split_pool_groups(outcome.store(), pool, outcome.range())?;
        let group_of = |server: headroom_telemetry::ids::ServerId| {
            split.groups.iter().position(|g| g.contains(&server)).unwrap_or(0)
        };
        let points =
            split.scatter.iter().map(|&(server, p5, p95)| (p5, p95, group_of(server))).collect();
        pools.push(PoolScatter {
            datacenter: dc,
            points,
            groups: split.groups.len(),
            silhouette: split.silhouette,
        });
    }
    Ok(Fig3Report { pools })
}

impl Fig3Report {
    /// CSV export of the scatter.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "fig03_scatter".into(),
            headers: vec!["datacenter".into(), "p5_cpu".into(), "p95_cpu".into(), "group".into()],
            rows: self
                .pools
                .iter()
                .flat_map(|p| {
                    p.points.iter().map(move |(p5, p95, g)| {
                        vec![
                            format!("DC{}", p.datacenter + 1),
                            format!("{p5:.2}"),
                            format!("{p95:.2}"),
                            g.to_string(),
                        ]
                    })
                })
                .collect(),
        }]
    }
}

impl fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3: 5th vs 95th percentile CPU per server (pool I, mixed hardware)")?;
        writeln!(f, "paper shape: one pool forms two clusters (newer hardware runs cooler)")?;
        let rows: Vec<Vec<String>> = self
            .pools
            .iter()
            .map(|p| {
                let (lo, hi) = p
                    .points
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, p95, _)| {
                        (lo.min(p95), hi.max(p95))
                    });
                vec![
                    format!("DC{}", p.datacenter + 1),
                    p.points.len().to_string(),
                    p.groups.to_string(),
                    format!("{:.2}", p.silhouette),
                    format!("{lo:.1}..{hi:.1}"),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(&["Pool", "Servers", "Groups", "Silhouette", "p95 CPU range"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_two_hardware_clusters() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.pools.len(), 3);
        for p in &r.pools {
            assert_eq!(p.groups, 2, "DC{} silhouette {}", p.datacenter + 1, p.silhouette);
            // Both groups are populated.
            let g0 = p.points.iter().filter(|(_, _, g)| *g == 0).count();
            assert!(g0 > 0 && g0 < p.points.len());
        }
    }

    #[test]
    fn export_shape() {
        let r = run(&Scale::quick()).unwrap();
        let tables = r.tables();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].headers.len(), 4);
        assert!(r.to_string().contains("Fig. 3"));
    }
}
