//! Figs. 12–13 — fleet-wide CPU distributions.
//!
//! Paper: "60% of all servers exhibit a 95th CPU utilization of 15%", ~80%
//! of servers use less than 30% CPU at p95, a small population (≈20%)
//! spreads between 30% and 100% (Fig. 12); and over individual 120-second
//! samples "only 1% of samples were greater than 25% and fewer than 0.1% of
//! samples were above 40%" with "fewer than 15% of machines" showing >40%
//! spikes (Fig. 13).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation};
use headroom_cluster::topology::{Fleet, FleetBuilder};
use headroom_core::report::render_table;
use headroom_stats::histogram::{Ecdf, Histogram};
use headroom_stats::percentile::percentile;
use headroom_telemetry::ids::ServerId;

use crate::csv::CsvTable;
use crate::Scale;

/// Builds the fleet used by the fleet-wide utilisation studies: the
/// paper-shaped fleet plus a minority of *hot* under-provisioned pools that
/// produce the 30–100% tail of Fig. 12.
pub fn utilization_fleet(seed: u64, fraction: f64) -> Result<Fleet, Box<dyn Error>> {
    let mut builder = FleetBuilder::new(seed).datacenters(9);
    for kind in MicroserviceKind::ALL {
        let spec = kind.spec();
        let n = ((spec.servers_per_pool as f64 * fraction).round() as usize).max(4);
        builder = builder.deploy_service(kind, n)?;
    }
    // Hot pools: the same services run by teams that sized for cost, not
    // comfort. A sizeable population lands in the paper's 30-100% band
    // (mostly just above 30), plus a small overloaded sliver at the top.
    let spec = MicroserviceKind::C.spec();
    let hot = spec.clone().with_peak_rps_per_server(spec.peak_rps_per_server * 2.6);
    let n_hot = ((spec.servers_per_pool as f64 * fraction * 0.6).round() as usize).max(4);
    builder = builder.deploy_with_spec(&hot, n_hot, hot.peak_rps_per_server)?;
    let overloaded = spec.clone().with_peak_rps_per_server(spec.peak_rps_per_server * 4.0);
    let n_over = ((spec.servers_per_pool as f64 * fraction * 0.15).round() as usize).max(2);
    builder = builder.deploy_with_spec(&overloaded, n_over, overloaded.peak_rps_per_server)?;
    Ok(builder.build())
}

/// The Figs. 12–13 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1213Report {
    /// Servers observed.
    pub servers: usize,
    /// 120-second samples observed.
    pub samples: u64,
    /// Fig. 12 CDF series `(p95 cpu, fraction of servers)`.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of servers with p95 CPU ≤ 15% (paper ~60%).
    pub servers_p95_at_most_15: f64,
    /// Fraction of servers with p95 CPU < 30% (paper ~80%).
    pub servers_p95_below_30: f64,
    /// Fraction of servers with any sample > 40% (paper <15%).
    pub servers_spiking_above_40: f64,
    /// Fig. 13 histogram series `(cpu bin center, fraction of samples)`.
    pub histogram: Vec<(f64, f64)>,
    /// Fraction of samples above 25% CPU (paper ~1%).
    pub samples_above_25: f64,
    /// Fraction of samples above 40% CPU (paper <0.1%).
    pub samples_above_40: f64,
}

/// Runs the fleet CPU-distribution study over one simulated day.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(scale: &Scale) -> Result<Fig1213Report, Box<dyn Error>> {
    let fleet = utilization_fleet(scale.seed, scale.fleet_fraction)?;
    let mut sim = Simulation::new(
        fleet,
        Default::default(),
        SimConfig {
            seed: scale.seed,
            recording: RecordingPolicy::SnapshotOnly,
            track_availability: false,
            ..SimConfig::default()
        },
    );

    let mut per_server: HashMap<ServerId, Vec<f64>> = HashMap::new();
    let mut histogram = Histogram::new(0.0, 100.0, 50)?;
    let mut above_25 = 0u64;
    let mut above_40 = 0u64;
    let mut samples = 0u64;
    sim.run_windows_observed(720, |snap| {
        for row in snap.rows {
            if !row.online {
                continue;
            }
            per_server.entry(row.server).or_default().push(row.cpu_pct);
            histogram.add(row.cpu_pct);
            samples += 1;
            if row.cpu_pct > 25.0 {
                above_25 += 1;
            }
            if row.cpu_pct > 40.0 {
                above_40 += 1;
            }
        }
    });

    let mut p95s = Vec::with_capacity(per_server.len());
    let mut spikers = 0usize;
    for values in per_server.values() {
        p95s.push(percentile(values, 95.0)?);
        if values.iter().any(|&v| v > 40.0) {
            spikers += 1;
        }
    }
    let servers = per_server.len();
    let cdf = Ecdf::from_values(&p95s)?;

    Ok(Fig1213Report {
        servers,
        samples,
        cdf: cdf.series(60),
        servers_p95_at_most_15: cdf.fraction_at_or_below(15.0),
        servers_p95_below_30: cdf.fraction_at_or_below(30.0),
        servers_spiking_above_40: spikers as f64 / servers.max(1) as f64,
        histogram: histogram.series(),
        samples_above_25: above_25 as f64 / samples.max(1) as f64,
        samples_above_40: above_40 as f64 / samples.max(1) as f64,
    })
}

impl Fig1213Report {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable::from_xy("fig12_p95_cpu_cdf", "p95_cpu_pct", "fraction_of_servers", &self.cdf),
            CsvTable::from_xy(
                "fig13_sample_distribution",
                "cpu_pct_bin",
                "fraction_of_samples",
                &self.histogram,
            ),
        ]
    }
}

impl fmt::Display for Fig1213Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figs. 12-13: fleet CPU distributions ({} servers, {} samples, 1 day)",
            self.servers, self.samples
        )?;
        let rows = vec![
            vec![
                "servers p95 CPU <= 15%".into(),
                format!("{:.0}%", self.servers_p95_at_most_15 * 100.0),
                "~60%".into(),
            ],
            vec![
                "servers p95 CPU < 30%".into(),
                format!("{:.0}%", self.servers_p95_below_30 * 100.0),
                "~80%".into(),
            ],
            vec![
                "servers with >40% spikes".into(),
                format!("{:.0}%", self.servers_spiking_above_40 * 100.0),
                "<15%".into(),
            ],
            vec![
                "samples > 25% CPU".into(),
                format!("{:.2}%", self.samples_above_25 * 100.0),
                "~1%".into(),
            ],
            vec![
                "samples > 40% CPU".into(),
                format!("{:.3}%", self.samples_above_40 * 100.0),
                "<0.1%".into(),
            ],
        ];
        write!(f, "{}", render_table(&["Quantity", "Measured", "Paper"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shape_matches_paper() {
        let r = run(&Scale::quick()).unwrap();
        assert!(r.servers > 100);
        // The majority of servers are cold at p95.
        assert!(
            r.servers_p95_at_most_15 > 0.45,
            "p95<=15 fraction {:.2}",
            r.servers_p95_at_most_15
        );
        assert!(r.servers_p95_below_30 > 0.70, "p95<30 fraction {:.2}", r.servers_p95_below_30);
        // A hot tail exists but is a minority.
        assert!(r.servers_p95_below_30 < 1.0, "a 30-100% tail must exist");
        assert!(r.servers_spiking_above_40 < 0.25, "{:.2}", r.servers_spiking_above_40);
        // Samples above 25% are rare; above 40% rarer.
        assert!(r.samples_above_25 < 0.12, "{:.3}", r.samples_above_25);
        assert!(r.samples_above_40 < r.samples_above_25);
        // CDF is monotone and ends at 1.
        for w in r.cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((r.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
