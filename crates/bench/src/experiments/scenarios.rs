//! The adversarial-scenario scoring gate.
//!
//! Not a paper artifact: `repro scenarios` replays the
//! `headroom_workload::scenarios` catalog — flash crowd, regional
//! failover, hypergrowth, batch arrivals, flap storm, mid-run model swap —
//! through the closed planning loop on the small 3-DC fixture fleet and
//! scores the planner on each. A closed loop on a diurnal fleet has its
//! own baseline urgency and SLO behaviour even with no adversary, so the
//! detection and SLO metrics are *differential*: each catalog run is
//! scored against a no-event control run ([`scenarios::baseline`]) of the
//! same loop. Four contracts are checked, and any violation fails the
//! experiment (and CI):
//!
//! 1. **per-scenario scores within checked-in thresholds** — detection
//!    delay (windows from scenario onset to the first window with *more*
//!    urgent pools than the control run, or the first drift reset for the
//!    model-swap scenario), excess SLO-violation pool-windows (simulator
//!    ground truth: a pool's mean online p95 latency exceeding its
//!    catalog SLO for one window, minus the control run's count),
//!    recommendation flap count (grow↔shrink direction reversals under
//!    dwell hysteresis), and — for hypergrowth — mean absolute
//!    days-to-exhaustion error against the scenario's analytic growth
//!    curve, evaluated mid-run while runway remains;
//! 2. **byte-identity under chaos** — every scenario's recommendation
//!    stream and final engine checkpoint must be bit-identical across
//!    fan-out widths, both [`SweepExec`] modes, and both snapshot layouts
//!    (the determinism invariant must survive event-driven fleets);
//! 3. **zero steady-state allocation under an active scenario** — a
//!    warmed, non-replan window with a `DatacenterLoss` + global surge
//!    active must not touch the heap, in either layout (counted when the
//!    `repro` binary's counting allocator is installed);
//! 4. **well-formedness** — every generated scenario passes
//!    [`Scenario::validate`] against the fixture fleet.
//!
//! Scenario lengths and the fixture fleet are deliberately *not* scaled by
//! `--quick` (like `repro sweep`'s grid) so the per-scenario scores in
//! `BENCH_sweep.json` stay comparable across machines and PRs; `--quick`
//! only trims the identity grid. Run `repro sweep scenarios` in that order
//! when regenerating the artifact — the sweep arm rewrites the file, the
//! scenarios arm merges its block into it.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::{RecordingPolicy, SnapshotLayout};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track;
use headroom_online::planner::{
    OnlinePlannerConfig, ResizeAction, ResizeRecommendation, SweepExec,
};
use headroom_online::sweep::SweepEngine;
use headroom_service::checkpoint;
use headroom_stats::persist::{Persist, Writer};
use headroom_telemetry::ids::{DatacenterId, PoolId};
use headroom_telemetry::time::{WindowIndex, WINDOWS_PER_DAY};
use headroom_workload::scenarios::{self, Scenario};

use crate::csv::CsvTable;
use crate::Scale;

/// Datacenters in the fixture fleet the catalog is generated against.
pub const FIXTURE_DATACENTERS: u16 = 3;

/// One scenario's checked-in acceptance thresholds. All bounds are
/// inclusive maxima; `None` disables that metric's check for scenarios
/// where it is not meaningful (e.g. detection delay for the flap storm,
/// whose point is suppression, or days-to-exhaustion error for scenarios
/// without an analytic growth curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioThresholds {
    /// Scenario this row gates (matches [`Scenario::name`]).
    pub name: &'static str,
    /// Detection must happen within this many windows of onset.
    pub max_detection_delay: Option<u64>,
    /// SLO-violation pool-windows in excess of the no-event control run.
    pub max_slo_excess: u64,
    /// Grow↔shrink direction reversals over the whole run.
    pub max_flaps: u64,
    /// Mean |projected − analytic| days-to-exhaustion at mid-run.
    pub max_days_err: Option<f64>,
}

/// The checked-in per-scenario gate. Values were measured on the
/// deterministic seed-42 catalog and given headroom; they are regression
/// tripwires, not tuning targets — a breach means planner or simulator
/// behaviour changed under chaos and must be explained.
pub const THRESHOLDS: [ScenarioThresholds; 6] = [
    ScenarioThresholds {
        name: "flash_crowd",
        // A 10× ramp over 8 windows: excess urgency must surface within
        // ~an hour of onset (measured 35 windows — the windowed p99 needs
        // a handful of post-ramp windows to separate from the control).
        max_detection_delay: Some(60),
        max_slo_excess: 1200,
        max_flaps: 40,
        max_days_err: None,
    },
    ScenarioThresholds {
        name: "regional_failover",
        // A lost DC shifts +50% onto each survivor within one window, but
        // the catalog jitters onset into the overnight trough — excess
        // urgency materialises as demand climbs toward the morning peak
        // (measured 116 windows ≈ 3.9 h).
        max_detection_delay: Some(180),
        max_slo_excess: 900,
        max_flaps: 40,
        max_days_err: None,
    },
    ScenarioThresholds {
        name: "hypergrowth",
        max_detection_delay: Some(6 * WINDOWS_PER_DAY),
        max_slo_excess: 6000,
        max_flaps: 120,
        // The projector fits a linear daily-growth trend; against the
        // superlinear curve it over-estimates runway by ~3 days at the
        // mid-run evaluation point (measured 2.96).
        max_days_err: Some(4.5),
    },
    ScenarioThresholds {
        name: "batch_arrivals",
        max_detection_delay: Some(16),
        max_slo_excess: 3600,
        max_flaps: 60,
        max_days_err: None,
    },
    ScenarioThresholds {
        name: "flap_storm",
        // Thrash suppression is the metric here, not detection.
        max_detection_delay: None,
        max_slo_excess: 2400,
        max_flaps: 70,
        max_days_err: None,
    },
    ScenarioThresholds {
        name: "model_swap_drift",
        // Drift detection needs post-swap windows to accumulate residuals.
        max_detection_delay: Some(240),
        max_slo_excess: 1600,
        max_flaps: 40,
        max_days_err: None,
    },
];

/// One scenario's measured scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScore {
    /// Scenario name.
    pub name: &'static str,
    /// Windows driven.
    pub windows: u64,
    /// Window the adversarial condition began.
    pub onset_window: u64,
    /// Windows from onset to the first window with more urgent pools than
    /// the no-event control run at the same window (drift scenarios: to
    /// the first drift reset). `None` = never detected.
    pub detection_delay: Option<u64>,
    /// Pool-windows whose mean online p95 latency exceeded the pool's
    /// SLO, in excess of the no-event control run over the same span.
    pub slo_excess: u64,
    /// Grow↔shrink direction reversals across all pools.
    pub flaps: u64,
    /// Resize recommendations applied by the closed loop.
    pub recommendations: u64,
    /// Mean |projected − analytic| days-to-exhaustion, read mid-run while
    /// the fleet still has runway (growth scenarios only).
    pub days_err: Option<f64>,
    /// Identity cells (threads × exec × layout) matching the reference
    /// byte-for-byte.
    pub cells_identical: usize,
    /// Identity cells checked.
    pub cells_total: usize,
}

impl ScenarioScore {
    /// The threshold breaches of this score against `t` (empty = pass).
    pub fn breaches(&self, t: &ScenarioThresholds) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(bound) = t.max_detection_delay {
            match self.detection_delay {
                None => out.push(format!("{}: never detected (bound {bound})", self.name)),
                Some(d) if d > bound => {
                    out.push(format!("{}: detection delay {d} > {bound}", self.name));
                }
                _ => {}
            }
        }
        if self.slo_excess > t.max_slo_excess {
            out.push(format!(
                "{}: {} excess SLO-violation pool-windows > {}",
                self.name, self.slo_excess, t.max_slo_excess
            ));
        }
        if self.flaps > t.max_flaps {
            out.push(format!("{}: {} flaps > {}", self.name, self.flaps, t.max_flaps));
        }
        if let Some(bound) = t.max_days_err {
            match self.days_err {
                None => out.push(format!("{}: no days-to-exhaustion projection", self.name)),
                Some(e) if e > bound => {
                    out.push(format!(
                        "{}: days-to-exhaustion error {e:.2} > {bound:.2}",
                        self.name
                    ));
                }
                _ => {}
            }
        }
        if self.cells_identical != self.cells_total {
            out.push(format!(
                "{}: {}/{} identity cells diverged",
                self.name,
                self.cells_total - self.cells_identical,
                self.cells_total
            ));
        }
        out
    }
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenariosReport {
    /// Pools in the fixture fleet.
    pub pools: usize,
    /// Servers in the fixture fleet.
    pub servers: usize,
    /// Planner dwell hysteresis used by the closed loop.
    pub dwell_windows: u64,
    /// Per-scenario scorecards, catalog order.
    pub scores: Vec<ScenarioScore>,
    /// Threshold breaches (empty = gate passed).
    pub breaches: Vec<String>,
    /// Heap allocations over 10 warmed scenario-active windows, row layout.
    pub steady_allocs_rows: u64,
    /// Same, columnar layout.
    pub steady_allocs_cols: u64,
    /// Whether the counting allocator was installed.
    pub alloc_tracking: bool,
}

impl ScenariosReport {
    /// Whether every contract held.
    pub fn all_pass(&self) -> bool {
        self.breaches.is_empty()
            && self.scores.iter().all(|s| s.cells_identical == s.cells_total)
            && (!self.alloc_tracking || self.steady_allocs_rows + self.steady_allocs_cols == 0)
    }

    /// The `"scenarios": [...]` JSON block merged into `BENCH_sweep.json`
    /// (no trailing comma or newline; 2-space indent at top level).
    pub fn scenarios_block(&self) -> String {
        let mut s = String::new();
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scores.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!("      \"windows\": {},\n", sc.windows));
            s.push_str(&format!("      \"onset_window\": {},\n", sc.onset_window));
            s.push_str(&format!(
                "      \"detection_delay_windows\": {},\n",
                sc.detection_delay.map(|d| d.to_string()).unwrap_or_else(|| "null".into())
            ));
            s.push_str(&format!("      \"slo_excess_pool_windows\": {},\n", sc.slo_excess));
            s.push_str(&format!("      \"flaps\": {},\n", sc.flaps));
            s.push_str(&format!("      \"recommendations\": {},\n", sc.recommendations));
            s.push_str(&format!(
                "      \"days_to_exhaustion_abs_err\": {},\n",
                sc.days_err.map(|e| format!("{e:.3}")).unwrap_or_else(|| "null".into())
            ));
            s.push_str(&format!("      \"identity_cells_identical\": {},\n", sc.cells_identical));
            s.push_str(&format!("      \"identity_cells_total\": {}\n", sc.cells_total));
            s.push_str(if i + 1 < self.scores.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]");
        s
    }
}

/// Splices this report's `"scenarios"` block into an existing
/// `BENCH_sweep.json` text (replacing any previous block), or renders a
/// standalone artifact when the sweep file is missing or unrecognisable.
/// The block is always inserted directly after the opening `{`, with a
/// trailing comma — position-independent of whatever the sweep arm wrote.
pub fn merge_into_sweep_json(existing: Option<&str>, report: &ScenariosReport) -> String {
    let block = report.scenarios_block();
    if let Some(text) = existing {
        let cleaned = without_scenarios_block(text);
        if let Some(rest) = cleaned.strip_prefix("{\n") {
            return format!("{{\n{block},\n{rest}");
        }
    }
    format!("{{\n  \"experiment\": \"scenarios\",\n{block}\n}}\n")
}

/// The sweep arm's mirror of [`merge_into_sweep_json`]: re-splices the
/// `"scenarios"` block of a previously written artifact into a freshly
/// rendered sweep JSON, so `repro sweep` and `repro scenarios` compose in
/// either order — neither run drops the other's block. Returns `fresh`
/// unchanged when the old artifact is missing or holds no block.
pub fn preserve_scenarios_block(existing: Option<&str>, fresh: &str) -> String {
    let Some(block) = existing.and_then(extract_scenarios_block) else {
        return fresh.to_string();
    };
    match fresh.strip_prefix("{\n") {
        Some(rest) => format!("{{\n{block},\n{rest}"),
        None => fresh.to_string(),
    }
}

/// The `"scenarios"` block of a previously written artifact — the exact
/// line shapes [`ScenariosReport::scenarios_block`] emits, trailing comma
/// stripped — or `None` when `text` holds no block.
fn extract_scenarios_block(text: &str) -> Option<String> {
    let mut lines: Vec<&str> = Vec::new();
    let mut capturing = false;
    for line in text.lines() {
        if !capturing && line == "  \"scenarios\": [" {
            capturing = true;
        }
        if capturing {
            if line == "  ]," {
                lines.push("  ]");
                return Some(lines.join("\n"));
            }
            lines.push(line);
            if line == "  ]" {
                return Some(lines.join("\n"));
            }
        }
    }
    None
}

/// Removes a previously spliced `"scenarios"` block (the exact line shapes
/// [`ScenariosReport::scenarios_block`] emits) from `text`.
fn without_scenarios_block(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut skipping = false;
    for line in text.lines() {
        if !skipping && line == "  \"scenarios\": [" {
            skipping = true;
            continue;
        }
        if skipping {
            if line == "  ]," || line == "  ]" {
                skipping = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The closed-loop planner configuration every drive uses. The sizing
/// window is 8 h — short enough that a flap-storm pulse decays out of the
/// windowed p99 before the next pulse lands, long enough to span the
/// diurnal shoulder.
fn planner_config(threads: usize, exec: SweepExec, dwell_windows: u64) -> OnlinePlannerConfig {
    OnlinePlannerConfig {
        window_capacity: 240,
        min_fit_windows: 120,
        dwell_windows,
        // The fixture fleet is 6 pools; force one-pool chunks so the
        // multi-thread identity cells actually exercise the parallel path.
        min_pool_chunk: 1,
        threads,
        exec,
        ..OnlinePlannerConfig::default()
    }
}

/// Per-pool QoS from the catalog, as the other gates derive it.
fn engine_for(
    fleet: &headroom_cluster::topology::Fleet,
    config: OnlinePlannerConfig,
) -> SweepEngine {
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in fleet.pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    engine
}

/// The `Persist` encoding of one window's recommendations — the
/// byte-identity unit.
fn rec_bytes(recs: &[ResizeRecommendation]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(recs.len());
    for r in recs {
        r.persist(&mut w);
    }
    w.into_bytes()
}

/// One drive's outputs: the byte-identity trail plus (scoring drives only)
/// the per-window urgency/SLO tracks the differential scores are computed
/// from. Opaque outside this module — callers obtain one only as the
/// optional shared-baseline argument to [`score_scenario`].
pub struct DriveOutcome {
    recs: Vec<Vec<u8>>,
    final_checkpoint: Vec<u8>,
    /// Pools with `needs_capacity()` after each window (scoring only).
    urgent: Vec<usize>,
    /// SLO-violation pool count in each window (scoring only).
    slo: Vec<u64>,
    flaps: u64,
    recommendations: u64,
    /// First window ≥ onset with a drift reset beyond the pre-onset count.
    drift_detection: Option<u64>,
    /// `(peak_rps, supportable_rps, days_to_exhaustion)` per pool, read at
    /// the requested evaluation window.
    eval: Vec<(f64, f64, Option<f64>)>,
}

/// Drives one scenario end to end through the closed loop: step the
/// simulator in the requested layout, feed the engine, apply every
/// recommendation (clamped to physical pool size, mirroring
/// `OnlinePlanner::run_closed_loop`) for the next window.
#[allow(clippy::too_many_arguments)]
fn drive(
    sc: &Scenario,
    seed: u64,
    threads: usize,
    exec: SweepExec,
    columnar: bool,
    dwell_windows: u64,
    scoring: bool,
    eval_window: Option<u64>,
) -> DriveOutcome {
    let mut sim = FleetScenario::small(seed)
        .with_scenario(sc)
        .with_recording(RecordingPolicy::SnapshotOnly)
        .into_simulation();
    let mut engine = engine_for(sim.fleet(), planner_config(threads, exec, dwell_windows));
    let physical: BTreeMap<PoolId, usize> =
        sim.fleet().pools().iter().map(|p| (p.id, p.size())).collect();
    let slo: BTreeMap<PoolId, f64> =
        sim.fleet().pools().iter().map(|p| (p.id, p.service.spec().latency_slo_ms)).collect();
    let onset = sc.onset_window().0;
    let windows = sc.windows();
    let drift_scenario = !sc.model_swaps().is_empty();

    let mut out = DriveOutcome {
        recs: Vec::with_capacity(windows as usize),
        final_checkpoint: Vec::new(),
        urgent: Vec::new(),
        slo: Vec::new(),
        flaps: 0,
        recommendations: 0,
        drift_detection: None,
        eval: Vec::new(),
    };
    let mut last_action: BTreeMap<PoolId, ResizeAction> = BTreeMap::new();
    let mut drift_baseline = 0usize;
    for w in 0..windows {
        let mut win_slo = 0u64;
        if columnar {
            let snap = sim.step_columns_partitioned();
            engine.observe_columns(&snap);
        } else {
            let snap = sim.step_snapshot_partitioned();
            if scoring {
                for slice in snap.pools {
                    let (mut sum, mut n) = (0.0, 0usize);
                    for row in snap.pool_rows(slice) {
                        if row.online {
                            sum += row.latency_p95_ms;
                            n += 1;
                        }
                    }
                    if n > 0 && sum / n as f64 > slo[&slice.pool] {
                        win_slo += 1;
                    }
                }
            }
            engine.observe_partitioned(&snap);
        }
        if scoring {
            let a = engine.assessments();
            out.slo.push(win_slo);
            out.urgent.push(a.urgent_count());
            if w + 1 == onset {
                drift_baseline = a.drift_event_total();
            }
            if drift_scenario
                && out.drift_detection.is_none()
                && w >= onset
                && a.drift_event_total() > drift_baseline
            {
                out.drift_detection = Some(w);
            }
            if Some(w + 1) == eval_window {
                out.eval = a
                    .values()
                    .map(|a| {
                        (
                            a.projection.peak_rps,
                            a.projection.supportable_rps,
                            a.projection.days_to_exhaustion,
                        )
                    })
                    .collect();
            }
        }
        let recs = engine.drain_recommendations();
        out.recs.push(rec_bytes(&recs));
        let next = sim.current_window();
        for mut rec in recs {
            rec.to_servers = rec.to_servers.clamp(1, physical[&rec.pool]);
            if scoring {
                out.recommendations += 1;
                if let Some(prev) = last_action.insert(rec.pool, rec.action) {
                    if prev != rec.action {
                        out.flaps += 1;
                    }
                }
            }
            let _ = sim.schedule_resize(rec.pool, next, rec.to_servers);
        }
    }
    // The execution knobs are config, not planner state; normalize them so
    // final checkpoints compare across cells (as the service gate does).
    engine.set_threads(1);
    engine.set_exec(SweepExec::Persistent);
    out.final_checkpoint = checkpoint::save(&engine);
    out
}

/// The identity grid beyond the reference cell (threads 1, persistent,
/// row layout). `--quick` trims the grid; the full run covers both exec
/// modes, both layouts, and widths up to 8.
fn identity_cells(quick: bool) -> Vec<(usize, SweepExec, bool)> {
    if quick {
        vec![(1, SweepExec::Persistent, true), (8, SweepExec::Scoped, true)]
    } else {
        vec![
            (1, SweepExec::Persistent, true),
            (2, SweepExec::Persistent, false),
            (2, SweepExec::Scoped, true),
            (8, SweepExec::Persistent, false),
            (8, SweepExec::Scoped, true),
        ]
    }
}

/// Dwell hysteresis of the scored closed loop.
pub const GATE_DWELL_WINDOWS: u64 = 2;

/// Days after onset the hypergrowth projection is read — late enough for
/// several completed days of growth trend, early enough that the fleet
/// still has runway to project across.
const GROWTH_EVAL_DAYS: u64 = 4;

/// Scores one scenario against the no-event control run and checks its
/// identity grid. `baseline` is a control-run outcome covering at least
/// `sc.windows()` windows at the same dwell setting (the gate drives one
/// shared control run; pass `None` to have this call drive its own).
/// Exposed to tests — the dwell-regression tests re-score single scenarios
/// at different dwell settings without paying for the whole catalog.
pub fn score_scenario(
    sc: &Scenario,
    seed: u64,
    dwell_windows: u64,
    cells: &[(usize, SweepExec, bool)],
    baseline: Option<&DriveOutcome>,
) -> ScenarioScore {
    let onset = sc.onset_window().0;
    let eval_window = sc.growth().map(|_| onset + GROWTH_EVAL_DAYS * WINDOWS_PER_DAY);
    let reference =
        drive(sc, seed, 1, SweepExec::Persistent, false, dwell_windows, true, eval_window);
    let owned_baseline;
    let base = match baseline {
        Some(b) => b,
        None => {
            owned_baseline = drive(
                &scenarios::baseline(sc.windows()),
                seed,
                1,
                SweepExec::Persistent,
                false,
                dwell_windows,
                true,
                None,
            );
            &owned_baseline
        }
    };
    assert!(
        base.urgent.len() >= sc.windows() as usize,
        "control run shorter than scenario: {} < {}",
        base.urgent.len(),
        sc.windows()
    );

    let mut cells_identical = 0;
    for &(threads, exec, columnar) in cells {
        let out = drive(sc, seed, threads, exec, columnar, dwell_windows, false, None);
        if out.recs == reference.recs && out.final_checkpoint == reference.final_checkpoint {
            cells_identical += 1;
        }
    }

    let detection = if !sc.model_swaps().is_empty() {
        reference.drift_detection
    } else {
        (onset as usize..reference.urgent.len())
            .find(|&w| reference.urgent[w] > base.urgent[w])
            .map(|w| w as u64)
    };
    let slo_total: u64 = reference.slo.iter().sum();
    let base_slo: u64 = base.slo[..reference.slo.len()].iter().sum();

    let mut days_err = None;
    if let (Some(g), Some(eval_w)) = (sc.growth(), eval_window) {
        // Analytic ground truth, from the state at the evaluation window:
        // f0 is the whole-day demand step active then; the true
        // days-to-exhaustion of a pool with peak/supportable ratio r is the
        // smallest x where the curve has grown by g(d0 + x)/g(d0) ≥ 1/r.
        let f0 = sc.script().demand_factor(DatacenterId(0), WindowIndex(eval_w - 1).midpoint());
        let d0 = (0..=scenarios::HYPERGROWTH_DAYS)
            .map(|d| d as f64)
            .min_by(|a, b| (g.factor(*a) - f0).abs().total_cmp(&(g.factor(*b) - f0).abs()))
            .unwrap_or(0.0);
        let (mut err, mut n) = (0.0, 0usize);
        for &(peak, supportable, projected) in &reference.eval {
            let Some(projected) = projected else { continue };
            let ratio = supportable / peak;
            let mut truth = None;
            let mut x = 0.0;
            while x <= 60.0 {
                if g.factor(d0 + x) / g.factor(d0) >= ratio {
                    truth = Some(x);
                    break;
                }
                x += 0.05;
            }
            if let Some(t) = truth {
                err += (projected - t).abs();
                n += 1;
            }
        }
        if n > 0 {
            days_err = Some(err / n as f64);
        }
    }

    ScenarioScore {
        name: sc.name(),
        windows: sc.windows(),
        onset_window: onset,
        detection_delay: detection.map(|d| d - onset),
        slo_excess: slo_total.saturating_sub(base_slo),
        flaps: reference.flaps,
        recommendations: reference.recommendations,
        days_err,
        cells_identical,
        cells_total: cells.len(),
    }
}

/// Runs the four scenario contracts.
///
/// # Errors
///
/// Fails outright on any threshold breach, identity divergence, validation
/// failure, or — when the counting allocator is installed — a nonzero
/// scenario-active steady-state allocation count. These are acceptance
/// criteria; a CI smoke run must go red.
pub fn run(scale: &Scale) -> Result<ScenariosReport, Box<dyn Error>> {
    let catalog = scenarios::catalog(scale.seed, FIXTURE_DATACENTERS);
    for sc in &catalog {
        sc.validate(FIXTURE_DATACENTERS)
            .map_err(|e| format!("scenario generator produced an ill-formed script: {e}"))?;
    }

    let probe = FleetScenario::small(scale.seed);
    let pools = probe.fleet().pools().len();
    let servers = probe.fleet().server_count();
    drop(probe);

    // One shared no-event control run spanning the longest scenario; a
    // closed loop's window-w state depends only on windows < w, so every
    // scenario compares against the control's prefix.
    let longest = catalog.iter().map(Scenario::windows).max().unwrap_or(0);
    let control = drive(
        &scenarios::baseline(longest),
        scale.seed,
        1,
        SweepExec::Persistent,
        false,
        GATE_DWELL_WINDOWS,
        true,
        None,
    );

    let cells = identity_cells(scale.is_quick());
    let mut scores = Vec::with_capacity(catalog.len());
    for sc in &catalog {
        scores.push(score_scenario(sc, scale.seed, GATE_DWELL_WINDOWS, &cells, Some(&control)));
    }

    let mut breaches = Vec::new();
    for score in &scores {
        let t = THRESHOLDS
            .iter()
            .find(|t| t.name == score.name)
            .ok_or_else(|| format!("no checked-in thresholds for scenario {}", score.name))?;
        breaches.extend(score.breaches(t));
    }

    let alloc_tracking = alloc_track::is_tracking();
    let steady_allocs_rows =
        crate::alloc_fixture::measure_steady_state_allocs_scenario(2, SnapshotLayout::Rows);
    let steady_allocs_cols =
        crate::alloc_fixture::measure_steady_state_allocs_scenario(2, SnapshotLayout::Columnar);

    let report = ScenariosReport {
        pools,
        servers,
        dwell_windows: GATE_DWELL_WINDOWS,
        scores,
        breaches,
        steady_allocs_rows,
        steady_allocs_cols,
        alloc_tracking,
    };
    if !report.breaches.is_empty() {
        return Err(format!("adversarial scenario gate failed:\n{report}").into());
    }
    if alloc_tracking && report.steady_allocs_rows + report.steady_allocs_cols > 0 {
        return Err(format!(
            "scenario-active steady-state window path allocated ({} row / {} columnar) — \
             the zero-allocation contract is broken:\n{report}",
            report.steady_allocs_rows, report.steady_allocs_cols
        )
        .into());
    }
    Ok(report)
}

impl ScenariosReport {
    /// CSV export of the scorecards.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "scenarios".into(),
            headers: vec![
                "scenario".into(),
                "windows".into(),
                "onset_window".into(),
                "detection_delay_windows".into(),
                "slo_excess_pool_windows".into(),
                "flaps".into(),
                "recommendations".into(),
                "days_to_exhaustion_abs_err".into(),
                "identity_cells_identical".into(),
                "identity_cells_total".into(),
            ],
            rows: self
                .scores
                .iter()
                .map(|s| {
                    vec![
                        s.name.to_string(),
                        s.windows.to_string(),
                        s.onset_window.to_string(),
                        s.detection_delay.map(|d| d.to_string()).unwrap_or_default(),
                        s.slo_excess.to_string(),
                        s.flaps.to_string(),
                        s.recommendations.to_string(),
                        s.days_err.map(|e| format!("{e:.3}")).unwrap_or_default(),
                        s.cells_identical.to_string(),
                        s.cells_total.to_string(),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for ScenariosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Adversarial scenarios: {} pools / {} servers, dwell {} windows \
             (detection and SLO scores are excess over the no-event control run)",
            self.pools, self.servers, self.dwell_windows
        )?;
        let rows: Vec<Vec<String>> = self
            .scores
            .iter()
            .map(|s| {
                vec![
                    s.name.to_string(),
                    s.windows.to_string(),
                    s.onset_window.to_string(),
                    s.detection_delay.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
                    s.slo_excess.to_string(),
                    s.flaps.to_string(),
                    s.recommendations.to_string(),
                    s.days_err.map(|e| format!("{e:.2}")).unwrap_or_else(|| "-".into()),
                    format!(
                        "{}/{}{}",
                        s.cells_identical,
                        s.cells_total,
                        if s.cells_identical == s.cells_total { "" } else { "  DIVERGED" }
                    ),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &[
                    "Scenario",
                    "Windows",
                    "Onset",
                    "Detect delay",
                    "SLO excess",
                    "Flaps",
                    "Recs",
                    "Days err",
                    "Identity",
                ],
                &rows
            )
        )?;
        if self.breaches.is_empty() {
            writeln!(f, "thresholds: all within checked-in bounds")?;
        } else {
            for b in &self.breaches {
                writeln!(f, "THRESHOLD BREACH: {b}")?;
            }
        }
        writeln!(
            f,
            "scenario-active steady-state allocations/10 windows: {} row, {} columnar{}",
            self.steady_allocs_rows,
            self.steady_allocs_cols,
            if self.alloc_tracking {
                " (counted — must be 0)"
            } else {
                " (allocator not installed; run via `repro` to count)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end gate at quick scale: every scenario scored, every
    /// threshold held, every identity cell byte-identical.
    #[test]
    fn scenarios_gate_passes_at_quick_scale() {
        let r = run(&Scale::quick()).unwrap();
        assert!(r.all_pass(), "scenario gate failed: {r}");
        assert_eq!(r.scores.len(), 6, "the full catalog is scored");
        assert!(
            r.scores.iter().filter(|s| s.detection_delay.is_some()).count() >= 5,
            "at least five scenarios detected: {r}"
        );
        for s in &r.scores {
            assert_eq!(s.cells_identical, s.cells_total, "{} diverged: {r}", s.name);
            assert!(s.recommendations > 0, "{} drove no recommendations: {r}", s.name);
        }
        let hyper = r.scores.iter().find(|s| s.name == "hypergrowth").unwrap();
        assert!(hyper.days_err.is_some(), "hypergrowth must project exhaustion: {r}");
        assert!(!r.alloc_tracking, "plain cargo test has no counting allocator");
    }

    /// Dwell hysteresis suppresses flap-storm thrash without delaying the
    /// genuine regional-failover emergency. The storm's pulse-driven grows
    /// are urgent (dwell-exempt) and its shrink-backs persist for hours,
    /// so a dwell long enough to out-wait the inter-pulse gap is what
    /// suppresses the grow↔shrink reversals — and even that hours-long
    /// dwell must not delay failover detection, because urgency bypasses
    /// the dwell wait entirely.
    #[test]
    fn dwell_suppresses_flap_storm_without_delaying_failover() {
        // Longer than the post-pulse shrink phase (~4 h = 120 windows).
        const STORM_DWELL: u64 = 150;
        let seed = Scale::quick().seed;
        let storm = scenarios::flap_storm(seed, FIXTURE_DATACENTERS);
        let thrashy = score_scenario(&storm, seed, 0, &[], None);
        let damped = score_scenario(&storm, seed, STORM_DWELL, &[], None);
        let bound = THRESHOLDS.iter().find(|t| t.name == "flap_storm").unwrap().max_flaps;
        assert!(
            damped.flaps < thrashy.flaps,
            "dwell must suppress thrash: {} !< {}",
            damped.flaps,
            thrashy.flaps
        );
        assert!(damped.flaps <= bound, "damped flaps {} > bound {bound}", damped.flaps);

        let failover = scenarios::regional_failover(seed, FIXTURE_DATACENTERS);
        let scored = score_scenario(&failover, seed, STORM_DWELL, &[], None);
        let bound = THRESHOLDS
            .iter()
            .find(|t| t.name == "regional_failover")
            .unwrap()
            .max_detection_delay
            .unwrap();
        let delay = scored.detection_delay.expect("failover must be detected");
        assert!(delay <= bound, "dwell delayed the emergency: {delay} > {bound}");
    }

    #[test]
    fn json_block_merges_and_replaces() {
        let report = ScenariosReport {
            pools: 6,
            servers: 120,
            dwell_windows: 2,
            scores: vec![ScenarioScore {
                name: "flash_crowd",
                windows: 1000,
                onset_window: 720,
                detection_delay: Some(3),
                slo_excess: 10,
                flaps: 1,
                recommendations: 5,
                days_err: None,
                cells_identical: 5,
                cells_total: 5,
            }],
            breaches: Vec::new(),
            steady_allocs_rows: 0,
            steady_allocs_cols: 0,
            alloc_tracking: false,
        };
        // Standalone when no sweep artifact exists.
        let standalone = merge_into_sweep_json(None, &report);
        assert!(standalone.starts_with("{\n  \"experiment\": \"scenarios\",\n"));
        assert!(standalone.ends_with("  ]\n}\n"));

        // Merge into a sweep-shaped file.
        let sweep = "{\n  \"experiment\": \"sweep\",\n  \"grid\": []\n}\n";
        let merged = merge_into_sweep_json(Some(sweep), &report);
        assert!(merged.contains("\"experiment\": \"sweep\""));
        assert!(merged.contains("\"scenarios\": ["));
        assert!(merged.contains("\"name\": \"flash_crowd\""));

        // Re-merging replaces the block instead of duplicating it.
        let remerged = merge_into_sweep_json(Some(&merged), &report);
        assert_eq!(remerged.matches("\"scenarios\": [").count(), 1);
        assert_eq!(remerged, merged, "idempotent splice");

        // Unrecognisable existing content falls back to standalone.
        let fallback = merge_into_sweep_json(Some("not json"), &report);
        assert!(fallback.starts_with("{\n  \"experiment\": \"scenarios\",\n"));
    }

    /// `repro sweep` then `repro scenarios` must converge to the same
    /// artifact as `repro scenarios` then `repro sweep` — neither order
    /// drops the other experiment's block.
    #[test]
    fn sweep_and_scenarios_writes_are_order_independent() {
        let report = ScenariosReport {
            pools: 6,
            servers: 120,
            dwell_windows: 2,
            scores: vec![ScenarioScore {
                name: "flash_crowd",
                windows: 1000,
                onset_window: 720,
                detection_delay: Some(3),
                slo_excess: 10,
                flaps: 1,
                recommendations: 5,
                days_err: None,
                cells_identical: 5,
                cells_total: 5,
            }],
            breaches: Vec::new(),
            steady_allocs_rows: 0,
            steady_allocs_cols: 0,
            alloc_tracking: false,
        };
        let fresh_sweep = "{\n  \"experiment\": \"sweep\",\n  \"grid\": []\n}\n";

        // Order A: sweep writes first, scenarios merges into it.
        let a = merge_into_sweep_json(Some(&preserve_scenarios_block(None, fresh_sweep)), &report);
        // Order B: scenarios writes first (standalone), sweep re-splices
        // the block into its fresh artifact.
        let standalone = merge_into_sweep_json(None, &report);
        let b = preserve_scenarios_block(Some(&standalone), fresh_sweep);

        assert_eq!(a, b, "artifact must not depend on experiment order");
        assert!(b.contains("\"experiment\": \"sweep\""));
        assert_eq!(b.matches("\"scenarios\": [").count(), 1);
        assert!(b.contains("\"name\": \"flash_crowd\""));

        // Sweep rewrites are idempotent against an already merged file.
        let rewritten = preserve_scenarios_block(Some(&b), fresh_sweep);
        assert_eq!(rewritten, b, "idempotent re-splice");

        // And a sweep rewrite without any prior artifact is a plain write.
        assert_eq!(preserve_scenarios_block(None, fresh_sweep), fresh_sweep);
    }
}
