//! §III-B headline numbers — global utilisation and downtime.
//!
//! Paper: "we found the global utilization to be 23%. This indicates we have
//! the upper bound for nearly 4x potential for CPU efficiency improvement";
//! "Well-managed servers use only 2% downtime, yet 17% was the observed
//! average."

use std::error::Error;
use std::fmt;

use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation};
use headroom_core::report::render_table;
use headroom_stats::Summary;
use headroom_telemetry::availability::AvailabilityBreakdown;

use crate::csv::CsvTable;
use crate::experiments::fig12_13::utilization_fleet;
use crate::Scale;

/// The §III-B headline report.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalReport {
    /// Mean CPU across all online server-windows (paper: 23%).
    pub global_cpu_utilization: f64,
    /// Implied upper bound on CPU efficiency improvement (paper: ~4x).
    pub efficiency_upper_bound: f64,
    /// Mean downtime across server-days (paper: 17%).
    pub mean_downtime: f64,
    /// Downtime of the best-managed population (paper: 2%).
    pub well_managed_downtime: f64,
    /// Server-windows observed.
    pub samples: u64,
}

/// Runs the headline study over the utilisation fleet.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(scale: &Scale) -> Result<GlobalReport, Box<dyn Error>> {
    let fleet = utilization_fleet(scale.seed, scale.fleet_fraction)?;
    let mut sim = Simulation::new(
        fleet,
        Default::default(),
        SimConfig {
            seed: scale.seed,
            recording: RecordingPolicy::SnapshotOnly,
            track_availability: true,
            ..SimConfig::default()
        },
    );
    let mut cpu = Summary::new();
    // The downtime statistics need the longer availability horizon to
    // converge; CPU statistics ride along.
    let days = scale.availability_days.max(2.0);
    sim.run_windows_observed((days * 720.0) as u64, |snap| {
        for row in snap.rows {
            if row.online {
                cpu.add(row.cpu_pct);
            }
        }
    });
    let breakdown =
        AvailabilityBreakdown::from_log(sim.availability()).ok_or("no availability data")?;

    let util = cpu.mean() / 100.0;
    Ok(GlobalReport {
        global_cpu_utilization: util,
        efficiency_upper_bound: if util > 0.0 { 1.0 / util } else { 0.0 },
        mean_downtime: 1.0 - breakdown.mean,
        well_managed_downtime: breakdown.infrastructure_overhead,
        samples: cpu.count(),
    })
}

impl GlobalReport {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "global_headlines".into(),
            headers: vec!["metric".into(), "measured".into(), "paper".into()],
            rows: vec![
                vec![
                    "global cpu utilization".into(),
                    format!("{:.1}%", self.global_cpu_utilization * 100.0),
                    "23%".into(),
                ],
                vec![
                    "efficiency upper bound".into(),
                    format!("{:.1}x", self.efficiency_upper_bound),
                    "~4x".into(),
                ],
                vec![
                    "mean downtime".into(),
                    format!("{:.1}%", self.mean_downtime * 100.0),
                    "17%".into(),
                ],
                vec![
                    "well-managed downtime".into(),
                    format!("{:.1}%", self.well_managed_downtime * 100.0),
                    "2%".into(),
                ],
            ],
        }]
    }
}

impl fmt::Display for GlobalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sec. III-B headlines ({} server-windows)", self.samples)?;
        let t = &self.tables()[0];
        write!(f, "{}", render_table(&["Metric", "Measured", "Paper"], &t.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_heavily_underutilised() {
        let r = run(&Scale::quick()).unwrap();
        // The shape: global utilisation far below 50%, several-x headroom.
        assert!(
            r.global_cpu_utilization > 0.03 && r.global_cpu_utilization < 0.35,
            "util {:.3}",
            r.global_cpu_utilization
        );
        assert!(r.efficiency_upper_bound > 2.5, "bound {:.1}", r.efficiency_upper_bound);
        // Downtime: average far above the well-managed 2%.
        assert!(r.mean_downtime > 0.04, "downtime {:.3}", r.mean_downtime);
        assert!(
            (r.well_managed_downtime - 0.02).abs() < 0.015,
            "wm downtime {:.3}",
            r.well_managed_downtime
        );
        assert!(r.samples > 10_000);
    }
}
