//! Fig. 2 — six resource counters versus workload for micro-service D
//! across six datacenters.
//!
//! Expected shape (paper §II-A1): processor utilisation and the network
//! counters are linear in RPS with low variance; disk read bytes and memory
//! pages show "vertical patterns" (paging noise uncorrelated with load);
//! the disk queue is static.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::RecordingPolicy;
#[cfg(test)]
use headroom_core::metric_validation::MetricVerdict;
use headroom_core::metric_validation::{screen_xy, CounterScreen};
use headroom_core::report::render_table;
use headroom_telemetry::counter::CounterKind;

use crate::csv::CsvTable;
use crate::Scale;

/// One Fig. 2 panel: a counter's screen plus its scatter series.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// The counter.
    pub counter: CounterKind,
    /// Validation screen (fit, R², verdict).
    pub screen: CounterScreen,
    /// `(datacenter index, rps, value)` scatter points.
    pub points: Vec<(usize, f64, f64)>,
}

/// The Fig. 2 report: six panels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Report {
    /// One panel per Fig. 2 counter.
    pub panels: Vec<Panel>,
}

/// Runs the Fig. 2 experiment.
///
/// # Errors
///
/// Propagates simulation and screening failures.
pub fn run(scale: &Scale) -> Result<Fig2Report, Box<dyn Error>> {
    let servers = (scale.pool_servers / 2).max(5);
    let outcome = FleetScenario::single_service(MicroserviceKind::D, 6, servers, scale.seed)
        .with_recording(RecordingPolicy::Full)
        .run_days(1.0)?;

    let mut panels = Vec::new();
    for counter in CounterKind::FIG2_RESOURCES {
        let mut points = Vec::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (dc, pool) in outcome.pools().into_iter().enumerate() {
            for (rps, value) in outcome.store().pool_paired_observations(
                pool,
                CounterKind::RequestsPerSec,
                counter,
                outcome.range(),
            ) {
                points.push((dc, rps, value));
                xs.push(rps);
                ys.push(value);
            }
        }
        let screen = screen_xy(counter, &xs, &ys);
        panels.push(Panel { counter, screen, points });
    }
    Ok(Fig2Report { panels })
}

impl Fig2Report {
    /// The screen for a counter, if present.
    pub fn screen_for(&self, counter: CounterKind) -> Option<&CounterScreen> {
        self.panels.iter().find(|p| p.counter == counter).map(|p| &p.screen)
    }

    /// CSV export: one scatter per panel.
    pub fn tables(&self) -> Vec<CsvTable> {
        self.panels
            .iter()
            .map(|p| CsvTable {
                name: format!(
                    "fig02_{}",
                    p.counter.label().to_lowercase().replace([' ', '/'], "_")
                ),
                headers: vec!["datacenter".into(), "rps".into(), "value".into()],
                rows: p
                    .points
                    .iter()
                    .map(|(dc, x, y)| {
                        vec![format!("DC{}", dc + 1), format!("{x:.2}"), format!("{y:.2}")]
                    })
                    .collect(),
            })
            .collect()
    }
}

impl fmt::Display for Fig2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2: resource counters vs workload (service D, 6 DCs, 1 day)")?;
        writeln!(f, "paper shape: CPU/network linear; disk+paging vertical; queue static")?;
        let rows: Vec<Vec<String>> = self
            .panels
            .iter()
            .map(|p| {
                vec![
                    p.counter.label().to_string(),
                    format!("{:.3}", p.screen.r_squared),
                    format!("{:?}", p.screen.verdict),
                    p.screen
                        .fit
                        .map(|fit| format!("{:.4}x+{:.2}", fit.slope, fit.intercept))
                        .unwrap_or_else(|| "-".to_string()),
                    p.points.len().to_string(),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["Counter", "R^2", "Verdict", "Fit", "Points"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.panels.len(), 6);
        // CPU tight linear.
        let cpu = r.screen_for(CounterKind::CpuPercent).unwrap();
        assert_eq!(cpu.verdict, MetricVerdict::Linear, "cpu r2 {}", cpu.r_squared);
        // Network linear (possibly a bit wider across DCs).
        let net = r.screen_for(CounterKind::NetworkBytesPerSec).unwrap();
        assert!(net.r_squared > 0.5, "net r2 {}", net.r_squared);
        // Paging and disk reads are not linear in workload.
        let paging = r.screen_for(CounterKind::MemoryPagesPerSec).unwrap();
        assert_ne!(paging.verdict, MetricVerdict::Linear);
        let disk = r.screen_for(CounterKind::DiskReadBytesPerSec).unwrap();
        assert_ne!(disk.verdict, MetricVerdict::Linear);
        // Queue static/uncorrelated.
        let queue = r.screen_for(CounterKind::DiskQueueLength).unwrap();
        assert_ne!(queue.verdict, MetricVerdict::Linear);
    }

    #[test]
    fn export_has_six_tables() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.tables().len(), 6);
        assert!(r.to_string().contains("Processor Utilization"));
    }
}
