//! §II-A2 — the decision-tree pool classifier.
//!
//! The paper trains a decision tree (5-fold CV, min leaf 2000 machines) to
//! decide whether a pool exhibits the tightly-bound workload→CPU response
//! required for black-box planning, reporting 34 splits, R² = 0.746 and
//! AUC = 0.9804, with 55% of pools classified as tight.
//!
//! Here the training set is three simulated fleets; ground-truth labels come
//! from the catalog: services with mixed-table workloads (A), heavy
//! background tasks (C) or mixed hardware (I) are *not* tight until their
//! secondary workloads are modelled out.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::grouping::{train_pool_classifier, PoolFeatures};
use headroom_core::report::render_table;

use crate::csv::CsvTable;
use crate::Scale;

/// Services whose pools are labelled "not tight" (secondary workloads).
const NOISY_SERVICES: [MicroserviceKind; 3] =
    [MicroserviceKind::A, MicroserviceKind::C, MicroserviceKind::I];

/// The classifier-evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeReport {
    /// Pools in the training set.
    pub pools: usize,
    /// Tree split count (paper: 34 at 100K-server scale).
    pub splits: usize,
    /// Cross-validated R² of predicted probability (paper: 0.746).
    pub r_squared: f64,
    /// Cross-validated ROC AUC (paper: 0.9804).
    pub auc: f64,
    /// Cross-validated accuracy.
    pub accuracy: f64,
    /// Fraction of pools predicted tight (paper: 55%).
    pub tight_fraction: f64,
}

/// Runs the classifier experiment.
///
/// # Errors
///
/// Propagates simulation, feature-collection and training failures.
pub fn run(scale: &Scale) -> Result<TreeReport, Box<dyn Error>> {
    let mut rows: Vec<(PoolFeatures, bool)> = Vec::new();
    for seed_offset in 0..3u64 {
        let outcome = FleetScenario::paper_scale(scale.seed + seed_offset, scale.fleet_fraction)
            .run_days(1.0)?;
        for pool in outcome.pools() {
            let features = PoolFeatures::collect(outcome.store(), pool, outcome.range())?;
            let service =
                outcome.fleet().pool(pool).map(|p| p.service).ok_or("pool missing from fleet")?;
            let tight = !NOISY_SERVICES.contains(&service);
            rows.push((features, tight));
        }
    }
    let classifier = train_pool_classifier(&rows, 4, scale.seed)?;
    let tight_predicted = rows.iter().filter(|(f, _)| classifier.tree.predict(&f.as_vec())).count();
    Ok(TreeReport {
        pools: rows.len(),
        splits: classifier.tree.split_count(),
        r_squared: classifier.cv.r_squared,
        auc: classifier.cv.auc,
        accuracy: classifier.cv.accuracy,
        tight_fraction: tight_predicted as f64 / rows.len() as f64,
    })
}

impl TreeReport {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "tree_classifier".into(),
            headers: vec!["metric".into(), "measured".into(), "paper".into()],
            rows: vec![
                vec!["pools".into(), self.pools.to_string(), "1000s".into()],
                vec!["splits".into(), self.splits.to_string(), "34".into()],
                vec!["r_squared".into(), format!("{:.3}", self.r_squared), "0.746".into()],
                vec!["auc".into(), format!("{:.4}", self.auc), "0.9804".into()],
                vec!["accuracy".into(), format!("{:.3}", self.accuracy), "-".into()],
                vec!["tight_fraction".into(), format!("{:.2}", self.tight_fraction), "0.55".into()],
            ],
        }]
    }
}

impl fmt::Display for TreeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sec. II-A2: decision-tree pool classifier (5-fold CV)")?;
        let t = &self.tables()[0];
        let rows = t.rows.clone();
        write!(f, "{}", render_table(&["Metric", "Measured", "Paper"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_performs_like_paper_shape() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.pools, 3 * 81);
        assert!(r.auc > 0.85, "AUC {} should approach the paper's 0.98", r.auc);
        assert!(r.accuracy > 0.8, "accuracy {}", r.accuracy);
        assert!(r.splits >= 1);
        // Majority of pools are tight, as in the paper (55%).
        assert!(r.tight_fraction > 0.5 && r.tight_fraction < 0.9, "{}", r.tight_fraction);
    }
}
