//! Ablations of the design choices DESIGN.md calls out, plus the baseline
//! planner comparison motivating the paper (§I, §IV).
//!
//! 1. **RANSAC vs OLS** for the latency quadratic — deployment glitches
//!    must not bend the forecast curve (§II-B2);
//! 2. **Load partitioning** — per-partition fits of latency vs server count
//!    need enough partitions to control for total workload (§II-B2);
//! 3. **Grouping** — mixed-hardware pools fit badly as a whole and well per
//!    group (§II-A2, Fig. 3);
//! 4. **Planner comparison** — black-box right-sizing vs Erlang-C (exact and
//!    mis-calibrated), a lagged reactive autoscaler, and static peak
//!    provisioning.

use std::error::Error;
use std::fmt;

use headroom_baselines::queueing::QueueingPlanner;
use headroom_baselines::static_peak::StaticPeakPlanner;
use headroom_baselines::ReactiveAutoscaler;
use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::ServiceModel;
use headroom_core::curves::{LatencyModel, PoolObservations};
use headroom_core::grouping::split_pool_groups;
use headroom_core::partitions::partition_by_total_load;
use headroom_core::report::render_table;
use headroom_stats::{LinearFit, Polynomial};
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::time::WindowIndex;

use crate::csv::CsvTable;
use crate::Scale;

/// One planner's cost/QoS outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerRow {
    /// Planner name.
    pub name: String,
    /// Mean servers allocated across the horizon.
    pub mean_servers: f64,
    /// Fraction of windows violating the QoS threshold.
    pub violation_fraction: f64,
}

/// The ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AblateReport {
    /// |forecast − truth| at 540 RPS/server for the RANSAC latency fit (ms).
    pub ransac_error_ms: f64,
    /// Same for plain OLS (ms).
    pub ols_error_ms: f64,
    /// `(J, top-partition fit R²)` for the Eq. 1 fits.
    pub partition_r2: Vec<(usize, f64)>,
    /// Whole-pool CPU fit R² on the mixed-hardware pool.
    pub whole_pool_r2: f64,
    /// Per-group CPU fit R² after splitting.
    pub group_r2: Vec<f64>,
    /// Baseline planner comparison rows.
    pub planners: Vec<PlannerRow>,
}

/// Runs all four ablations.
///
/// # Errors
///
/// Propagates simulation, fitting and planning failures.
pub fn run(scale: &Scale) -> Result<AblateReport, Box<dyn Error>> {
    let (ransac_error_ms, ols_error_ms) = ransac_vs_ols(scale);
    let partition_r2 = partition_ablation(scale)?;
    let (whole_pool_r2, group_r2) = grouping_ablation(scale)?;
    let planners = planner_comparison(scale)?;
    Ok(AblateReport {
        ransac_error_ms,
        ols_error_ms,
        partition_r2,
        whole_pool_r2,
        group_r2,
        planners,
    })
}

/// Ablation 1: latency fit robustness under a deployment glitch.
fn ransac_vs_ols(scale: &Scale) -> (f64, f64) {
    let truth = Polynomial::new(vec![36.68, -0.031, 4.028e-5]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..400usize {
        let x = 120.0 + (i % 160) as f64 * 2.0;
        let mut y = truth.eval(x);
        // Deterministic mild noise.
        y += (((i as u64).wrapping_mul(scale.seed + 17)) % 100) as f64 / 100.0 - 0.5;
        // Deployment glitch: a contiguous run of badly elevated windows.
        if (60..100).contains(&i) {
            y += 25.0;
        }
        xs.push(x);
        ys.push(y);
    }
    let target = truth.eval(540.0);
    let ransac_err = LatencyModel::fit_xy(&xs, &ys, scale.seed)
        .map(|m| (m.predict(540.0) - target).abs())
        .unwrap_or(f64::NAN);
    let ols_err =
        Polynomial::fit(&xs, &ys, 2).map(|m| (m.predict(540.0) - target).abs()).unwrap_or(f64::NAN);
    (ransac_err, ols_err)
}

/// Ablation 2: Eq. 1 fit quality as the partition count J varies.
fn partition_ablation(scale: &Scale) -> Result<Vec<(usize, f64)>, Box<dyn Error>> {
    let scenario =
        FleetScenario::single_service(MicroserviceKind::D, 1, scale.pool_servers, scale.seed);
    let mut sim = scenario.into_simulation();
    let pool = sim.fleet().pools()[0].id;
    // Organic server-count variation: three sizes over three days.
    let n = scale.pool_servers;
    sim.schedule_resize(pool, WindowIndex(720), (n as f64 * 0.9) as usize)?;
    sim.schedule_resize(pool, WindowIndex(1440), (n as f64 * 0.8) as usize)?;
    sim.run_days(3.0);
    let obs = PoolObservations::collect(
        sim.store(),
        pool,
        headroom_telemetry::time::WindowRange::days(3.0),
    )?;
    let mut results = Vec::new();
    for j in [1usize, 2, 4, 8] {
        let parts = partition_by_total_load(&obs, j)?;
        let top = parts.last().ok_or("no partitions")?;
        let r2 = top.fit_latency_vs_servers(scale.seed).map(|m| m.r_squared).unwrap_or(0.0);
        results.push((j, r2));
    }
    Ok(results)
}

/// Ablation 3: whole-pool vs per-group CPU fits on mixed hardware.
fn grouping_ablation(scale: &Scale) -> Result<(f64, Vec<f64>), Box<dyn Error>> {
    let outcome =
        FleetScenario::single_service(MicroserviceKind::I, 1, scale.pool_servers, scale.seed)
            .run_days(1.0)?;
    let pool = outcome.pools()[0];
    let split = split_pool_groups(outcome.store(), pool, outcome.range())?;

    // Per-server (rps, cpu) points.
    let server_points = |server: headroom_telemetry::ids::ServerId| -> (Vec<f64>, Vec<f64>) {
        let store = outcome.store();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        if let (Some(rps), Some(cpu)) = (
            store.series(server, CounterKind::RequestsPerSec),
            store.series(server, CounterKind::CpuPercent),
        ) {
            for (w, r) in rps.iter() {
                if let Some(c) = cpu.value_at(w) {
                    xs.push(r);
                    ys.push(c);
                }
            }
        }
        (xs, ys)
    };

    let pool_fit_r2 = {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &server in outcome.store().servers_in_pool(pool) {
            let (mut sx, mut sy) = server_points(server);
            xs.append(&mut sx);
            ys.append(&mut sy);
        }
        LinearFit::fit(&xs, &ys)?.r_squared
    };
    let mut group_r2 = Vec::new();
    for group in &split.groups {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &server in group {
            let (mut sx, mut sy) = server_points(server);
            xs.append(&mut sx);
            ys.append(&mut sy);
        }
        group_r2.push(LinearFit::fit(&xs, &ys)?.r_squared);
    }
    Ok((pool_fit_r2, group_r2))
}

/// Ablation 4: planner comparison on a diurnal demand with a surge.
fn planner_comparison(scale: &Scale) -> Result<Vec<PlannerRow>, Box<dyn Error>> {
    // Ground truth: service B; the QoS limit is 32.5 ms p95, reached at
    // ~567 RPS/server on its latency curve.
    let model = ServiceModel::paper_pool_b();
    let rps_at_slo = {
        let poly = Polynomial::new(vec![
            model.latency_coeffs[0],
            model.latency_coeffs[1],
            model.latency_coeffs[2],
        ]);
        poly.solve_quadratic(32.5)?
    };

    // Demand: three diurnal days, one two-hour 1.6x surge on day 2.
    let peak_total = 100_000.0;
    let mut demand: Vec<f64> = (0..3 * 720)
        .map(|w| {
            let phase = (w as f64 / 720.0) * std::f64::consts::TAU;
            peak_total * (0.55 + 0.45 * phase.cos()).max(0.05)
        })
        .collect();
    for d in demand[1500..1560].iter_mut() {
        *d *= 1.6;
    }
    let qos_violated = |servers: f64, d: f64| d / servers > rps_at_slo;

    let mut rows = Vec::new();

    // Black-box right-sizing: min servers for the *known surge-inclusive*
    // peak, from the fitted curve (what the methodology converges to).
    let peak = demand.iter().copied().fold(0.0f64, f64::max);
    let right_sized = (peak / rps_at_slo).ceil();
    rows.push(PlannerRow {
        name: "black-box right-sized".into(),
        mean_servers: right_sized,
        violation_fraction: demand.iter().filter(|&&d| qos_violated(right_sized, d)).count() as f64
            / demand.len() as f64,
    });

    // Static peak x1.5 (status quo).
    let static_planner = StaticPeakPlanner::new(1.5, rps_at_slo)?;
    let static_servers = static_planner.required_servers(&demand) as f64;
    rows.push(PlannerRow {
        name: "static peak x1.5".into(),
        mean_servers: static_servers,
        violation_fraction: demand.iter().filter(|&&d| qos_violated(static_servers, d)).count()
            as f64
            / demand.len() as f64,
    });

    // Erlang-C: the model abstracts each server as a queue with service
    // rate mu (requests/sec it can carry at the SLO). Calibrated, mu equals
    // the measured per-server capacity; the drifted variant believes a
    // stale, 30%-optimistic mu — the §I "quickly invalidated as the system
    // evolves" failure.
    for (name, mu) in
        [("erlang-c calibrated", rps_at_slo), ("erlang-c drifted (+30% mu)", rps_at_slo * 1.3)]
    {
        let planner = QueueingPlanner::new(mu)?;
        let servers = planner.required_servers(peak, 32.5).map(|c| c as f64)?;
        rows.push(PlannerRow {
            name: name.into(),
            mean_servers: servers,
            violation_fraction: demand.iter().filter(|&&d| qos_violated(servers, d)).count() as f64
                / demand.len() as f64,
        });
    }

    // Reactive autoscaler with realistic lag.
    let scaler = ReactiveAutoscaler::new(rps_at_slo * 0.75, rps_at_slo)?.with_lag(30, 5);
    let outcome = scaler.simulate(&demand);
    rows.push(PlannerRow {
        name: "reactive autoscaler (1h lag)".into(),
        mean_servers: outcome.mean_servers,
        violation_fraction: outcome.violation_fraction(),
    });

    let _ = scale;
    Ok(rows)
}

impl AblateReport {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "ablate_ransac".into(),
                headers: vec!["fit".into(), "abs_error_ms_at_540rps".into()],
                rows: vec![
                    vec!["ransac".into(), format!("{:.2}", self.ransac_error_ms)],
                    vec!["ols".into(), format!("{:.2}", self.ols_error_ms)],
                ],
            },
            CsvTable {
                name: "ablate_partitions".into(),
                headers: vec!["partitions_j".into(), "top_partition_r2".into()],
                rows: self
                    .partition_r2
                    .iter()
                    .map(|(j, r2)| vec![j.to_string(), format!("{r2:.3}")])
                    .collect(),
            },
            CsvTable {
                name: "ablate_grouping".into(),
                headers: vec!["fit".into(), "r2".into()],
                rows: std::iter::once(vec![
                    "whole_pool".into(),
                    format!("{:.3}", self.whole_pool_r2),
                ])
                .chain(
                    self.group_r2
                        .iter()
                        .enumerate()
                        .map(|(i, r2)| vec![format!("group_{i}"), format!("{r2:.3}")]),
                )
                .collect(),
            },
            CsvTable {
                name: "ablate_planners".into(),
                headers: vec!["planner".into(), "mean_servers".into(), "violation_pct".into()],
                rows: self
                    .planners
                    .iter()
                    .map(|p| {
                        vec![
                            p.name.clone(),
                            format!("{:.0}", p.mean_servers),
                            format!("{:.2}%", p.violation_fraction * 100.0),
                        ]
                    })
                    .collect(),
            },
        ]
    }
}

impl fmt::Display for AblateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations")?;
        writeln!(
            f,
            "1. latency fit under deployment glitch: RANSAC err {:.2} ms vs OLS err {:.2} ms",
            self.ransac_error_ms, self.ols_error_ms
        )?;
        writeln!(f, "2. Eq.1 top-partition fit R² by J:")?;
        for (j, r2) in &self.partition_r2 {
            writeln!(f, "   J={j}: R²={r2:.3}")?;
        }
        writeln!(
            f,
            "3. mixed-hardware pool: whole-pool CPU R² {:.3} vs per-group {:?}",
            self.whole_pool_r2,
            self.group_r2.iter().map(|r| (r * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        )?;
        writeln!(f, "4. planner comparison (3 diurnal days + surge):")?;
        let rows: Vec<Vec<String>> = self
            .planners
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{:.0}", p.mean_servers),
                    format!("{:.2}%", p.violation_fraction * 100.0),
                ]
            })
            .collect();
        write!(f, "{}", render_table(&["Planner", "Mean servers", "QoS violations"], &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_support_design_choices() {
        let r = run(&Scale::quick()).unwrap();
        // 1. RANSAC shrugs off the glitch; OLS bends.
        assert!(
            r.ransac_error_ms < 0.5 * r.ols_error_ms,
            "ransac {:.2} vs ols {:.2}",
            r.ransac_error_ms,
            r.ols_error_ms
        );
        // 2. More partitions -> better-controlled fits.
        let j1 = r.partition_r2[0].1;
        let j_max = r.partition_r2.last().unwrap().1;
        assert!(j_max >= j1, "J=8 fit {j_max:.3} should beat J=1 {j1:.3}");
        // 3. Splitting the mixed-hardware pool improves every group's fit.
        for (i, g) in r.group_r2.iter().enumerate() {
            assert!(
                *g > r.whole_pool_r2 + 0.02,
                "group {i} R² {g:.3} vs whole {:.3}",
                r.whole_pool_r2
            );
        }
        // 4. Right-sizing carries less capacity than static peak with equal
        //    (zero) violations; the lagged autoscaler violates QoS.
        let find = |n: &str| r.planners.iter().find(|p| p.name.contains(n)).unwrap();
        let right = find("right-sized");
        let static_peak = find("static peak");
        let scaler = find("autoscaler");
        assert!(right.mean_servers < static_peak.mean_servers);
        assert_eq!(right.violation_fraction, 0.0);
        assert!(scaler.violation_fraction > 0.0);
        // Drifted Erlang-C underprovisions and violates.
        let drifted = find("drifted");
        assert!(drifted.violation_fraction > 0.0);
    }
}
