//! Figs. 4–5 — the first natural experiment: a two-hour datacenter loss.
//!
//! Paper: pools in multiple datacenters received "a median 56% increase in
//! workload volume … with one datacenter receiving an increase of 127%"
//! (Fig. 4), and "each datacenter's CPU usage followed the predicted linear
//! relationship" through the event (Fig. 5), with latency staying under
//! 26 ms.

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::curves::{CpuModel, PoolObservations};
use headroom_core::natural::{find_natural_experiments, verify_cpu_model_holds};
use headroom_core::report::render_table;
use headroom_telemetry::time::SimTime;
use headroom_workload::events;

use crate::csv::CsvTable;
use crate::Scale;

/// Surge measurement for one surviving datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivorSurge {
    /// Datacenter index (zero-based; DC1 is the lost one).
    pub datacenter: usize,
    /// Mean RPS/server during the event.
    pub event_rps: f64,
    /// Mean RPS/server in the same windows one day earlier.
    pub baseline_rps: f64,
    /// Relative increase.
    pub surge: f64,
    /// Whether the pre-event CPU line still predicted CPU during the event.
    pub cpu_model_holds: bool,
    /// Mean |CPU error| during the event (percentage points).
    pub cpu_error: f64,
}

/// The Figs. 4–5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig45Report {
    /// Per-survivor surges.
    pub survivors: Vec<SurvivorSurge>,
    /// Median surge across survivors (paper: +56%).
    pub median_surge: f64,
    /// Maximum surge (paper: +127%).
    pub max_surge: f64,
    /// RPS/server time series per datacenter for the Fig. 4 plot:
    /// `(datacenter, window, rps)`.
    pub series: Vec<(usize, u64, f64)>,
}

/// Runs the datacenter-loss natural experiment: service B in 4 DCs, losing
/// DC1 for two hours at its regional peak on day 2.
///
/// # Errors
///
/// Propagates simulation and fitting failures.
pub fn run(scale: &Scale) -> Result<Fig45Report, Box<dyn Error>> {
    // Day 2, 15:30 UTC: the lost DC is just past its regional peak while
    // the most remote survivor sits deep in its trough — which is what
    // spreads the relative surges (the paper's 56% median vs 127% max).
    let event_start = SimTime::from_days(2.0 + 15.5 / 24.0);
    let script = events::two_hour_dc_loss(headroom_telemetry::ids::DatacenterId(0), event_start);
    let outcome =
        FleetScenario::single_service(MicroserviceKind::B, 4, scale.pool_servers, scale.seed)
            .with_events(script)
            .run_days(4.0)?;

    let event_lo = event_start.window().0;
    let event_hi = (event_start + 2 * 3600).window().0;
    let day_windows = 720u64;

    let mut survivors = Vec::new();
    let mut series = Vec::new();
    for (dc, pool) in outcome.pools().into_iter().enumerate() {
        let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
        // Thinned Fig. 4 series.
        for (i, w) in obs.windows.iter().enumerate() {
            if w.0 % 5 == 0 {
                series.push((dc, w.0, obs.rps_per_server[i]));
            }
        }
        if dc == 0 {
            continue; // the lost datacenter
        }
        let in_event = |w: u64| w >= event_lo && w < event_hi;
        let event_obs = obs.filter_by(|i| in_event(obs.windows[i].0));
        let baseline_obs = obs.filter_by(|i| in_event(obs.windows[i].0 + day_windows));
        if event_obs.is_empty() || baseline_obs.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let event_rps = mean(&event_obs.rps_per_server);
        let baseline_rps = mean(&baseline_obs.rps_per_server);

        // Fig. 5: fit CPU on everything *outside* the event, verify on it.
        let calm = obs.filter_by(|i| !in_event(obs.windows[i].0));
        let cpu = CpuModel::fit(&calm)?;
        let events_found = find_natural_experiments(&obs, 1.25)?;
        let (holds, err) = events_found
            .iter()
            .max_by(|a, b| a.peak_rps.partial_cmp(&b.peak_rps).expect("finite"))
            .map(|e| {
                let report = verify_cpu_model_holds(&cpu, &obs, e, 0.08);
                (report.holds, report.mean_abs_error)
            })
            .unwrap_or((true, 0.0));

        survivors.push(SurvivorSurge {
            datacenter: dc,
            event_rps,
            baseline_rps,
            surge: event_rps / baseline_rps - 1.0,
            cpu_model_holds: holds,
            cpu_error: err,
        });
    }

    let mut surges: Vec<f64> = survivors.iter().map(|s| s.surge).collect();
    surges.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_surge = if surges.is_empty() { 0.0 } else { surges[surges.len() / 2] };
    let max_surge = surges.last().copied().unwrap_or(0.0);
    Ok(Fig45Report { survivors, median_surge, max_surge, series })
}

impl Fig45Report {
    /// CSV export: the Fig. 4 time series plus the per-survivor table.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![
            CsvTable {
                name: "fig04_rps_series".into(),
                headers: vec!["datacenter".into(), "window".into(), "rps_per_server".into()],
                rows: self
                    .series
                    .iter()
                    .map(|(dc, w, r)| {
                        vec![format!("DC{}", dc + 1), w.to_string(), format!("{r:.1}")]
                    })
                    .collect(),
            },
            CsvTable {
                name: "fig05_surges".into(),
                headers: vec![
                    "datacenter".into(),
                    "baseline_rps".into(),
                    "event_rps".into(),
                    "surge_pct".into(),
                    "cpu_model_holds".into(),
                ],
                rows: self
                    .survivors
                    .iter()
                    .map(|s| {
                        vec![
                            format!("DC{}", s.datacenter + 1),
                            format!("{:.1}", s.baseline_rps),
                            format!("{:.1}", s.event_rps),
                            format!("{:.0}%", s.surge * 100.0),
                            s.cpu_model_holds.to_string(),
                        ]
                    })
                    .collect(),
            },
        ]
    }
}

impl fmt::Display for Fig45Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figs. 4-5: two-hour datacenter loss (service B, 4 DCs, DC1 lost)")?;
        writeln!(
            f,
            "surge across survivors: median +{:.0}% (paper +56%), max +{:.0}% (paper +127%)",
            self.median_surge * 100.0,
            self.max_surge * 100.0
        )?;
        let rows: Vec<Vec<String>> = self
            .survivors
            .iter()
            .map(|s| {
                vec![
                    format!("DC{}", s.datacenter + 1),
                    format!("{:.0}", s.baseline_rps),
                    format!("{:.0}", s.event_rps),
                    format!("+{:.0}%", s.surge * 100.0),
                    if s.cpu_model_holds { "holds" } else { "BROKEN" }.to_string(),
                    format!("{:.2}pp", s.cpu_error),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            render_table(
                &["Survivor", "Baseline RPS", "Event RPS", "Surge", "CPU line", "CPU err"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surge_shape_matches_paper() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.survivors.len(), 3);
        // Median surge in the paper's ballpark (tens of percent).
        assert!(r.median_surge > 0.30 && r.median_surge < 1.2, "median {:.2}", r.median_surge);
        // Surges spread widely across survivors (the paper's 56% median vs
        // 127% outlier shape): max well above min.
        let min_surge = r.survivors.iter().map(|s| s.surge).fold(f64::INFINITY, f64::min);
        assert!(r.max_surge > 1.45 * min_surge, "max {:.2} min {min_surge:.2}", r.max_surge);
        // Fig. 5: the CPU line holds through the event everywhere.
        for s in &r.survivors {
            assert!(s.cpu_model_holds, "DC{} error {}", s.datacenter + 1, s.cpu_error);
        }
    }

    #[test]
    fn export_tables() {
        let r = run(&Scale::quick()).unwrap();
        let t = r.tables();
        assert_eq!(t.len(), 2);
        assert!(!t[0].rows.is_empty());
        assert!(r.to_string().contains("median"));
    }
}
