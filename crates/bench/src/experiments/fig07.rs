//! Fig. 7 — RSM experiment iterations.
//!
//! Paper: "RSM experiment iterations, showing latency increases from
//! successive server reductions until 14ms QoS limit is reached."

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_core::report::render_table;
use headroom_core::rsm::{run_reduction_experiment, RsmConfig, RsmOutcome};
use headroom_core::slo::QosRequirement;

use crate::csv::CsvTable;
use crate::Scale;

/// The paper's Fig. 7 QoS limit.
pub const QOS_LIMIT_MS: f64 = 14.0;

/// The Fig. 7 report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Report {
    /// The full RSM outcome.
    pub outcome: RsmOutcome,
}

/// Runs the RSM iteration experiment on a pool of the metrics service (G),
/// whose latency curve crosses 14 ms within a few 10% reductions.
///
/// # Errors
///
/// Propagates simulation and RSM failures.
pub fn run(scale: &Scale) -> Result<Fig7Report, Box<dyn Error>> {
    let scenario =
        FleetScenario::single_service(MicroserviceKind::G, 1, scale.pool_servers, scale.seed);
    let mut sim = scenario.into_simulation();
    let pool = sim.fleet().pools()[0].id;
    let config = RsmConfig {
        windows_per_iteration: (scale.observe_windows() / 3).max(240),
        max_iterations: 10,
        step_fraction: 0.10,
        ..RsmConfig::new(QosRequirement::latency(QOS_LIMIT_MS).with_cpu_ceiling(80.0))
    };
    let outcome = run_reduction_experiment(&mut sim, pool, &config)?;
    Ok(Fig7Report { outcome })
}

impl Fig7Report {
    /// CSV export of the iteration staircase.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "fig07_rsm_iterations".into(),
            headers: vec![
                "iteration".into(),
                "active_servers".into(),
                "peak_latency_ms".into(),
                "forecast_next_ms".into(),
                "within_qos".into(),
            ],
            rows: self
                .outcome
                .iterations
                .iter()
                .map(|it| {
                    vec![
                        it.iteration.to_string(),
                        it.active_servers.to_string(),
                        format!("{:.2}", it.peak_latency_ms),
                        it.forecast_next_ms.map(|v| format!("{v:.2}")).unwrap_or_default(),
                        it.within_qos.to_string(),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7: RSM iterations until the {:.0} ms QoS limit (service G)",
            self.outcome.qos_limit_ms
        )?;
        let rows: Vec<Vec<String>> = self
            .outcome
            .iterations
            .iter()
            .map(|it| {
                vec![
                    it.iteration.to_string(),
                    it.active_servers.to_string(),
                    format!("{:.2}", it.peak_latency_ms),
                    it.forecast_next_ms.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
                    if it.within_qos { "ok" } else { "over" }.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(&["Iter", "Servers", "Peak p95 (ms)", "Forecast next (ms)", "QoS"], &rows)
        )?;
        writeln!(
            f,
            "right-sized {} -> {} servers ({:.0}% saved)",
            self.outcome.initial_servers,
            self.outcome.final_servers,
            self.outcome.savings_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_rises_to_the_limit() {
        let r = run(&Scale::quick()).unwrap();
        let iters = &r.outcome.iterations;
        assert!(iters.len() >= 2);
        // Latency increases from successive reductions.
        assert!(iters.last().unwrap().peak_latency_ms > iters[0].peak_latency_ms);
        // Every in-QoS iteration is under the limit; the experiment found
        // real savings.
        assert!(r.outcome.savings_fraction() > 0.05);
        assert!(r.outcome.final_servers < r.outcome.initial_servers);
    }
}
