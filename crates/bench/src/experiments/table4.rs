//! Table IV — summary of server savings for the seven largest pools.
//!
//! Paper (per service, across all datacenters):
//!
//! | Pool | Efficiency | Latency impact | Online | Total |
//! |------|-----------|----------------|--------|-------|
//! | A | 15% | 9ms | 4%  | 19% |
//! | B | 33% | 2ms | 27% | 60% |
//! | C | 4%  | 7ms | 7%  | 11% |
//! | D | 33% | 8ms | 0%  | 33% |
//! | E | 33% | 2ms | 2%  | 35% |
//! | F | 33% | 4ms | 0%  | 33% |
//! | G | 5%  | 1ms | 0%  | 5%  |
//! | — | 20% | 5ms | 10% | 30% |

use std::error::Error;
use std::fmt;

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::scenario::FleetScenario;
use headroom_cluster::sim::RecordingPolicy;
use headroom_core::optimizer::{optimize_pool, PoolSavings};
use headroom_core::report::render_table;
use headroom_core::slo::QosRequirement;

use crate::csv::CsvTable;
use crate::Scale;

/// Paper values for one Table IV row: (efficiency %, latency ms, online %,
/// total %).
pub const PAPER_ROWS: [(char, f64, f64, f64, f64); 7] = [
    ('A', 15.0, 9.0, 4.0, 19.0),
    ('B', 33.0, 2.0, 27.0, 60.0),
    ('C', 4.0, 7.0, 7.0, 11.0),
    ('D', 33.0, 8.0, 0.0, 33.0),
    ('E', 33.0, 2.0, 2.0, 35.0),
    ('F', 33.0, 4.0, 0.0, 33.0),
    ('G', 5.0, 1.0, 0.0, 5.0),
];

/// One measured Table IV row (a service aggregated across datacenters).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Service letter.
    pub service: MicroserviceKind,
    /// Mean efficiency savings (fraction).
    pub efficiency: f64,
    /// Mean added latency at peak (ms).
    pub latency_impact_ms: f64,
    /// Mean online (availability) savings (fraction).
    pub online: f64,
    /// Total savings (fraction).
    pub total: f64,
    /// Pools contributing.
    pub pools: usize,
}

/// The Table IV report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Report {
    /// Measured rows A–G.
    pub rows: Vec<ServiceRow>,
    /// Server-weighted aggregate efficiency (paper 20%).
    pub agg_efficiency: f64,
    /// Mean latency impact (paper 5 ms).
    pub agg_latency_ms: f64,
    /// Aggregate online savings (paper 10%).
    pub agg_online: f64,
    /// Aggregate total savings (paper 30%).
    pub agg_total: f64,
}

/// Runs the Table IV experiment: a paper-shaped fleet observed for the
/// curve-fitting stage plus a longer availability-only stage.
///
/// # Errors
///
/// Propagates simulation and optimization failures.
pub fn run(scale: &Scale) -> Result<Table4Report, Box<dyn Error>> {
    // Phase 1: counters for curve fitting.
    let outcome = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .run_days(scale.observe_days)?;
    // Phase 2: the availability study over a longer horizon (same fleet,
    // counters off).
    let avail_outcome = FleetScenario::paper_scale(scale.seed, scale.fleet_fraction)
        .with_recording(RecordingPolicy::AvailabilityOnly)
        .run_days(scale.availability_days)?;

    let mut rows = Vec::new();
    let mut all: Vec<PoolSavings> = Vec::new();
    for kind in MicroserviceKind::TABLE1 {
        let spec = kind.spec();
        let qos = QosRequirement::latency(spec.latency_slo_ms).with_cpu_ceiling(60.0);
        let mut pool_rows = Vec::new();
        for pool in outcome.fleet().pools_of_service(kind) {
            let savings = optimize_pool(
                outcome.store(),
                avail_outcome.availability(),
                pool,
                outcome.range(),
                &qos,
                scale.availability_days as u64,
            )?;
            pool_rows.push(savings);
        }
        let n = pool_rows.len().max(1) as f64;
        let mean = |f: &dyn Fn(&PoolSavings) -> f64| pool_rows.iter().map(f).sum::<f64>() / n;
        rows.push(ServiceRow {
            service: kind,
            efficiency: mean(&|r| r.efficiency_savings),
            latency_impact_ms: mean(&|r| r.latency_impact_ms),
            online: mean(&|r| r.online_savings),
            total: mean(&|r| r.total_savings),
            pools: pool_rows.len(),
        });
        all.extend(pool_rows);
    }

    let report = headroom_core::optimizer::SavingsReport { rows: all };
    Ok(Table4Report {
        rows,
        agg_efficiency: report.efficiency_savings(),
        agg_latency_ms: report.mean_latency_impact_ms(),
        agg_online: report.online_savings(),
        agg_total: report.total_savings(),
    })
}

impl Table4Report {
    /// CSV export.
    pub fn tables(&self) -> Vec<CsvTable> {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .zip(PAPER_ROWS)
            .map(|(r, (letter, pe, pl, po, pt))| {
                vec![
                    letter.to_string(),
                    format!("{:.0}", r.efficiency * 100.0),
                    format!("{:.1}", r.latency_impact_ms),
                    format!("{:.0}", r.online * 100.0),
                    format!("{:.0}", r.total * 100.0),
                    format!("{pe:.0}/{pl:.0}/{po:.0}/{pt:.0}"),
                ]
            })
            .collect();
        rows.push(vec![
            "ALL".into(),
            format!("{:.0}", self.agg_efficiency * 100.0),
            format!("{:.1}", self.agg_latency_ms),
            format!("{:.0}", self.agg_online * 100.0),
            format!("{:.0}", self.agg_total * 100.0),
            "20/5/10/30".into(),
        ]);
        vec![CsvTable {
            name: "table4_savings".into(),
            headers: vec![
                "service".into(),
                "efficiency_pct".into(),
                "latency_impact_ms".into(),
                "online_pct".into(),
                "total_pct".into(),
                "paper_eff_lat_online_total".into(),
            ],
            rows,
        }]
    }
}

impl fmt::Display for Table4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV: summary of server savings (per service, across DCs)")?;
        let t = &self.tables()[0];
        write!(
            f,
            "{}",
            render_table(
                &["Pool", "Efficiency %", "Latency ms", "Online %", "Total %", "Paper (e/l/o/t)"],
                &t.rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_shape_matches_table4() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.rows.len(), 7);
        let by_service = |k: MicroserviceKind| r.rows.iter().find(|x| x.service == k).unwrap();

        // High-headroom pools (B, D, E, F) find ~1/3 savings.
        for k in
            [MicroserviceKind::B, MicroserviceKind::D, MicroserviceKind::E, MicroserviceKind::F]
        {
            let row = by_service(k);
            assert!((row.efficiency - 0.33).abs() < 0.12, "{k}: efficiency {:.2}", row.efficiency);
        }
        // Tight pools (C, G) find little.
        for k in [MicroserviceKind::C, MicroserviceKind::G] {
            let row = by_service(k);
            assert!(row.efficiency < 0.15, "{k}: efficiency {:.2}", row.efficiency);
        }
        // B's repurposed practice yields the largest online savings.
        let b = by_service(MicroserviceKind::B);
        assert!(b.online > 0.15, "B online {:.2}", b.online);
        let d = by_service(MicroserviceKind::D);
        assert!(d.online < 0.05, "D online {:.2}", d.online);
        // Aggregates in the paper's ballpark: ~20% efficiency + ~10% online.
        assert!((r.agg_efficiency - 0.20).abs() < 0.10, "agg eff {:.2}", r.agg_efficiency);
        assert!(r.agg_total > r.agg_efficiency);
        assert!((r.agg_total - 0.30).abs() < 0.12, "agg total {:.2}", r.agg_total);
    }
}
