//! Streaming planner over a multi-day growing fleet.
//!
//! Not a paper artifact: this experiment exercises the `headroom-online`
//! subsystem end to end and quantifies its two claims against the batch
//! pipeline on identical telemetry —
//!
//! 1. **agreement**: driven window-by-window, the streaming planner lands
//!    within ±1 server of the batch optimizer's minimum pool size;
//! 2. **cost**: its per-window update is orders of magnitude cheaper than
//!    the full batch refit a non-streaming planner would need to stay
//!    equally current.
//!
//! Demand grows a compounding 3%/day, so the exhaustion projector has a
//! real trend to extrapolate: the report shows each pool's headroom band
//! and projected days to exhaustion.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use headroom_cluster::scenario::FleetScenario;
use headroom_core::optimizer::optimize_pool;
use headroom_core::pipeline::CapacityPlanner;
use headroom_core::report::render_table;
use headroom_core::sizing::{PoolSizing, SizingPlanner};
use headroom_core::slo::QosRequirement;
use headroom_online::exhaustion::HeadroomBand;
use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::{WindowIndex, WindowRange};
use headroom_workload::events::daily_growth;

use crate::csv::CsvTable;
use crate::Scale;

/// Compounding demand growth per simulated day.
pub const GROWTH_PER_DAY: f64 = 0.03;

/// One pool's row in the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePoolRow {
    /// The pool.
    pub pool: PoolId,
    /// Online sizing at end of run.
    pub online: PoolSizing,
    /// Batch minimum over the same telemetry.
    pub batch_min_servers: usize,
    /// Headroom band at end of run.
    pub band: HeadroomBand,
    /// Projected days to exhaustion, when trustworthy.
    pub days_to_exhaustion: Option<f64>,
    /// Drift resets the pool saw.
    pub drift_events: usize,
}

/// The experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// Simulated days.
    pub days: f64,
    /// Per-pool comparison rows.
    pub rows: Vec<OnlinePoolRow>,
    /// Mean per-window cost of the streaming update (all pools).
    pub online_per_window: Duration,
    /// Cost of one full batch plan over the final store (all pools).
    pub batch_full_refit: Duration,
}

impl OnlineReport {
    /// batch refit time / per-window streaming time.
    pub fn speedup(&self) -> f64 {
        let online = self.online_per_window.as_secs_f64();
        if online <= 0.0 {
            return f64::INFINITY;
        }
        self.batch_full_refit.as_secs_f64() / online
    }

    /// Largest |online − batch| minimum-size disagreement across pools.
    pub fn max_disagreement(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.online.min_servers.abs_diff(r.batch_min_servers))
            .max()
            .unwrap_or(0)
    }
}

fn qos_for(pool: PoolId) -> QosRequirement {
    QosRequirement::small_fleet(pool)
}

/// Runs the streaming planner over a growing multi-day small fleet and
/// compares it with the batch pipeline.
///
/// # Errors
///
/// Propagates simulation and planning failures.
pub fn run(scale: &Scale) -> Result<OnlineReport, Box<dyn Error>> {
    let days = (scale.observe_days * 2.0).max(4.0);
    let windows = (days * 720.0).round() as u64;

    let scenario = FleetScenario::small(scale.seed)
        .with_events(daily_growth(GROWTH_PER_DAY, days.ceil() as u64));
    let mut sim = scenario.into_simulation();

    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    let mut planner = OnlinePlanner::new(config, qos_for(PoolId(0)));
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), qos_for(PoolId(pool)));
    }

    // Drive window by window through the partitioned ingestion path (each
    // shard aggregates its own pool's rows), timing only the planner's
    // share.
    let mut online_spent = Duration::ZERO;
    for _ in 0..windows {
        let snap = sim.step_snapshot_partitioned();
        let t = Instant::now();
        planner.observe_partitioned(&snap);
        online_spent += t.elapsed();
    }
    let online_per_window = online_spent / windows as u32;

    // The batch pipeline over the identical telemetry.
    let range = WindowRange::new(WindowIndex(0), sim.current_window());
    let batch_planner =
        CapacityPlanner { availability_days: days.ceil() as u64, ..CapacityPlanner::new() };
    let t = Instant::now();
    let _ = batch_planner.plan(sim.store(), sim.availability(), range, qos_for);
    let batch_full_refit = t.elapsed();

    let mut rows = Vec::new();
    for sizing in planner.sizings() {
        let batch = optimize_pool(
            sim.store(),
            sim.availability(),
            sizing.pool,
            range,
            &qos_for(sizing.pool),
            days.ceil() as u64,
        )?;
        let assessment = &planner.assessments()[&sizing.pool];
        rows.push(OnlinePoolRow {
            pool: sizing.pool,
            online: sizing,
            batch_min_servers: batch.min_servers,
            band: assessment.band,
            days_to_exhaustion: assessment.projection.days_to_exhaustion,
            drift_events: assessment.drift_events,
        });
    }

    Ok(OnlineReport { days, rows, online_per_window, batch_full_refit })
}

impl OnlineReport {
    /// CSV export of the comparison.
    pub fn tables(&self) -> Vec<CsvTable> {
        vec![CsvTable {
            name: "online_planner".into(),
            headers: vec![
                "pool".into(),
                "current_servers".into(),
                "online_min".into(),
                "batch_min".into(),
                "headroom_band".into(),
                "days_to_exhaustion".into(),
                "drift_events".into(),
            ],
            rows: self
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.pool.0.to_string(),
                        r.online.current_servers.to_string(),
                        r.online.min_servers.to_string(),
                        r.batch_min_servers.to_string(),
                        r.band.to_string(),
                        r.days_to_exhaustion.map(|d| format!("{d:.1}")).unwrap_or_default(),
                        r.drift_events.to_string(),
                    ]
                })
                .collect(),
        }]
    }
}

impl fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Streaming planner vs batch pipeline over {:.0} days at +{:.0}%/day demand",
            self.days,
            GROWTH_PER_DAY * 100.0
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.pool.0.to_string(),
                    r.online.current_servers.to_string(),
                    r.online.min_servers.to_string(),
                    r.batch_min_servers.to_string(),
                    r.band.to_string(),
                    r.days_to_exhaustion.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".into()),
                    r.drift_events.to_string(),
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            render_table(
                &[
                    "Pool",
                    "Current",
                    "Online min",
                    "Batch min",
                    "Band",
                    "Days to exhaustion",
                    "Drift"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "per-window streaming update: {:?}; full batch refit: {:?} ({:.0}x)",
            self.online_per_window,
            self.batch_full_refit,
            self.speedup()
        )?;
        writeln!(f, "max online/batch disagreement: {} server(s)", self.max_disagreement())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_agrees_with_batch_and_is_faster() {
        let r = run(&Scale::quick()).unwrap();
        assert_eq!(r.rows.len(), 6, "all six pools planned");
        assert!(r.max_disagreement() <= 1, "{}", r);
        assert!(r.speedup() >= 10.0, "speedup {:.1}x", r.speedup());
        // Growth plus finite supportable capacity: every pool projects a
        // finite exhaustion horizon by end of run.
        assert!(
            r.rows.iter().any(|row| row.days_to_exhaustion.is_some()),
            "growth trend produced projections: {}",
            r
        );
        for row in &r.rows {
            assert!(row.online.min_servers >= 1);
            assert!(row.online.min_servers <= row.online.current_servers);
        }
    }
}
