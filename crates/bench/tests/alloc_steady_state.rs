//! Zero-allocation contract of the steady-state window path.
//!
//! The whole per-window pipeline — `Simulation::step_snapshot_partitioned`
//! (demand sampling, load balancing, per-server model evaluation, snapshot
//! assembly) followed by `SweepEngine::sweep` (shard fan-out, estimator
//! updates, deterministic merge) — reuses its buffers once warmed. This
//! test installs a counting global allocator and asserts that a warmed,
//! non-replan window performs **zero** heap allocations, sequentially and
//! through the persistent worker pool.
//!
//! Kept as its own integration-test binary on purpose: the default test
//! harness runs tests concurrently, and a process-global allocation
//! counter only means something when nothing else is allocating.

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::sim::{RecordingPolicy, SimConfig, Simulation};
use headroom_cluster::topology::FleetBuilder;
use headroom_core::slo::QosRequirement;
use headroom_exec::alloc_track::{allocations, is_tracking, CountingAllocator};
use headroom_online::planner::OnlinePlannerConfig;
use headroom_online::sweep::SweepEngine;
use headroom_workload::events::EventScript;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Windows per replan under test; measured windows dodge the cadence.
const REPLAN_EVERY: u64 = 16;
/// Warm-up must fill the sliding window, the fits, and every scratch
/// buffer, and include several replans (so output buffers hold capacity).
const WARM_WINDOWS: u64 = 400;
const MEASURED_WINDOWS: u64 = 10;

fn warmed(threads: usize) -> (Simulation, SweepEngine) {
    let fleet = FleetBuilder::new(11)
        .datacenters(3)
        .without_failures()
        .without_incidents()
        .deploy_service(MicroserviceKind::B, 12)
        .expect("catalog service deploys")
        .build();
    let sim_config =
        SimConfig { seed: 11, recording: RecordingPolicy::SnapshotOnly, track_availability: false };
    let mut sim = Simulation::new(fleet, EventScript::empty(), sim_config);
    let config = OnlinePlannerConfig {
        window_capacity: 64,
        min_fit_windows: 32,
        replan_every: REPLAN_EVERY,
        threads,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for _ in 0..WARM_WINDOWS {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
    }
    engine.drain_recommendations();
    (sim, engine)
}

fn steady_state_allocations(threads: usize) -> u64 {
    let (mut sim, mut engine) = warmed(threads);
    assert!(
        engine.windows_seen().is_multiple_of(REPLAN_EVERY),
        "warm-up ends on a replan tick so every measured window is non-replan"
    );
    assert!(!engine.assessments().is_empty(), "the warmed engine planned pools");
    assert!(
        engine.assessments().values().all(|a| !a.band.needs_capacity()),
        "no pool is urgent, so no measured window replans"
    );
    let before = allocations();
    for _ in 0..MEASURED_WINDOWS {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
    }
    allocations() - before
}

#[test]
fn steady_state_window_allocates_nothing() {
    assert!(is_tracking(), "the counting allocator is installed");
    for threads in [1usize, 2, 4] {
        let delta = steady_state_allocations(threads);
        assert_eq!(
            delta, 0,
            "a warmed non-replan window must not allocate \
             (threads={threads}: {delta} allocations over {MEASURED_WINDOWS} windows)"
        );
    }
}
