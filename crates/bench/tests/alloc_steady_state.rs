//! Zero-allocation contract of the steady-state window path.
//!
//! The whole per-window pipeline — `Simulation::step_snapshot_partitioned`
//! (demand sampling, load balancing, per-server model evaluation, snapshot
//! assembly) followed by `SweepEngine::sweep` (shard fan-out, estimator
//! updates, deterministic merge) — reuses its buffers once warmed, and so
//! do its columnar sibling (`step_columns_partitioned` →
//! `observe_columns`) and the streamed pipeline (`step_streamed` →
//! `observe_streamed`, which generates metric columns tile-at-a-time
//! inside the sweep from `PassScratch`-resident buffers). This test
//! installs a counting global allocator and asserts that a warmed,
//! non-replan window performs **zero** heap allocations in all three
//! layouts, sequentially and through the persistent worker pool. The
//! workload is the shared fixture in `headroom_bench::alloc_fixture`, the
//! same one the `repro sweep` and `repro colsim` CI gates measure.
//!
//! Kept as its own integration-test binary on purpose: the default test
//! harness runs tests concurrently, and a process-global allocation
//! counter only means something when nothing else is allocating.

use headroom_bench::alloc_fixture::{
    measure_steady_state_allocs, measure_steady_state_allocs_scenario, MEASURED_WINDOWS,
};
use headroom_cluster::sim::SnapshotLayout;
use headroom_exec::alloc_track::{is_tracking, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const LAYOUTS: [SnapshotLayout; 3] =
    [SnapshotLayout::Rows, SnapshotLayout::Columnar, SnapshotLayout::Streamed];

#[test]
fn steady_state_window_allocates_nothing() {
    assert!(is_tracking(), "the counting allocator is installed");
    for layout in LAYOUTS {
        for threads in [1usize, 2, 4] {
            let delta = measure_steady_state_allocs(threads, layout);
            assert_eq!(
                delta, 0,
                "a warmed non-replan window must not allocate \
                 (threads={threads}, layout={layout:?}: {delta} allocations over \
                 {MEASURED_WINDOWS} windows)"
            );
        }
    }
}

/// The same contract with an adversarial scenario live: a `DatacenterLoss`
/// plus a global demand surge are active across every measured window, so
/// the event-evaluation and loss-redistribution paths must also be
/// allocation-free once warm.
#[test]
fn scenario_active_steady_state_window_allocates_nothing() {
    assert!(is_tracking(), "the counting allocator is installed");
    for layout in LAYOUTS {
        for threads in [1usize, 2, 4] {
            let delta = measure_steady_state_allocs_scenario(threads, layout);
            assert_eq!(
                delta, 0,
                "a warmed scenario-active non-replan window must not allocate \
                 (threads={threads}, layout={layout:?}: {delta} allocations over \
                 {MEASURED_WINDOWS} windows)"
            );
        }
    }
}
