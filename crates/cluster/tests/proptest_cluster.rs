//! Property tests for simulator invariants: maintenance practices hit their
//! long-run fractions, failures match their MTBF, service models stay in
//! their physical ranges, and reduction experiments conserve demand.

use headroom_cluster::catalog::MicroserviceKind;
use headroom_cluster::failure::FailureModel;
use headroom_cluster::hardware::HardwareGeneration;
use headroom_cluster::maintenance::{AvailabilityPractice, MaintenancePlan};
use headroom_cluster::service_model::ServiceModel;
use headroom_cluster::sim::{SimConfig, Simulation};
use headroom_cluster::topology::FleetBuilder;
use headroom_telemetry::counter::CounterKind;
use headroom_telemetry::time::{WindowIndex, WindowRange, WINDOWS_PER_DAY};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every practice converges to its advertised availability for any pool
    /// size and seed (the dithering property).
    #[test]
    fn maintenance_hits_long_run_fraction(
        n in 3usize..40,
        seed in 0u64..500,
        practice_idx in 0usize..4,
    ) {
        let practice = [
            AvailabilityPractice::WellManaged,
            AvailabilityPractice::Moderate,
            AvailabilityPractice::Heavy,
            AvailabilityPractice::Relaxed,
        ][practice_idx];
        let plan = MaintenancePlan::new(practice, seed).without_incidents();
        let mut offline = 0u64;
        let mut total = 0u64;
        for w in 0..(20 * WINDOWS_PER_DAY) {
            for i in 0..n {
                total += 1;
                if plan.is_offline(i, n, WindowIndex(w), 12.0) {
                    offline += 1;
                }
            }
        }
        let measured = offline as f64 / total as f64;
        let expected = 1.0 - practice.expected_availability();
        prop_assert!(
            (measured - expected).abs() < 0.03,
            "practice {practice:?} n {n}: measured {measured:.3} expected {expected:.3}"
        );
    }

    /// The failure process produces events at ~1/MTBF for any server key.
    #[test]
    fn failure_rate_tracks_mtbf(key in 0u64..1000, mtbf in 50.0f64..400.0) {
        let model = FailureModel { mtbf_windows: mtbf, repair_windows: 1, seed: 11 };
        let trials = 80_000u64;
        let events = (0..trials).filter(|&w| model.fails_at(key, WindowIndex(w))).count();
        let rate = events as f64 / trials as f64;
        prop_assert!(
            (rate - 1.0 / mtbf).abs() < 0.5 / mtbf + 0.001,
            "rate {rate:.5} vs 1/mtbf {:.5}",
            1.0 / mtbf
        );
    }

    /// Service models produce physical values for any load and hardware.
    #[test]
    fn model_outputs_physical(
        rps in 0.0f64..3000.0,
        hw_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let hw = HardwareGeneration::ALL[hw_idx];
        for model in [ServiceModel::paper_pool_b(), ServiceModel::paper_pool_d()] {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = model.window_metrics(rps, hw, WindowIndex(0), 5, 1, 1.0, &mut rng);
            prop_assert!((0.0..=100.0).contains(&m.cpu_pct));
            prop_assert!(m.latency_p95_ms >= model.latency_floor_ms);
            prop_assert!(m.latency_avg_ms <= m.latency_p95_ms + 1.0);
            prop_assert!(m.disk_read_bytes >= 0.0);
            prop_assert!(m.network_bytes >= 0.0);
            prop_assert!(m.memory_resident_mb > 0.0);
        }
    }

    /// A reduction keeps total pool workload unchanged: per-server load
    /// scales inversely with the active count.
    #[test]
    fn reduction_conserves_total_demand(keep in 4usize..10) {
        let spec = MicroserviceKind::B
            .spec()
            .with_practice(AvailabilityPractice::WellManaged);
        let fleet = FleetBuilder::new(5)
            .datacenters(1)
            .without_failures()
            .without_incidents()
            .deploy_with_spec(&spec, 10, spec.peak_rps_per_server)
            .unwrap()
            .build();
        let mut sim = Simulation::new(fleet, Default::default(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        sim.schedule_resize(pool, WindowIndex(WINDOWS_PER_DAY), keep).unwrap();
        sim.run_days(2.0);
        let store = sim.store();
        let total_at = |w: u64| {
            store
                .pool_window_mean(pool, CounterKind::RequestsPerSec, WindowIndex(w))
                .unwrap()
                * store.pool_active_servers(pool, WindowIndex(w)) as f64
        };
        // Compare the same window of day 1 and day 2 (both weekdays).
        let before = total_at(400);
        let after = total_at(400 + WINDOWS_PER_DAY);
        prop_assert!(
            (after / before - 1.0).abs() < 0.15,
            "total demand moved: {before:.0} -> {after:.0}"
        );
    }

    /// Simulated pool observations always carry matched vector lengths.
    #[test]
    fn observations_are_rectangular(seed in 0u64..50) {
        let fleet = FleetBuilder::new(seed)
            .datacenters(1)
            .deploy_service(MicroserviceKind::E, 8)
            .unwrap()
            .build();
        let mut sim = Simulation::new(fleet, Default::default(), SimConfig {
            seed,
            ..SimConfig::default()
        });
        sim.run_windows(100);
        let pool = sim.fleet().pools()[0].id;
        let range = WindowRange::new(WindowIndex(0), WindowIndex(100));
        let rps = sim.store().pool_mean_series(pool, CounterKind::RequestsPerSec, range);
        let cpu = sim.store().pool_mean_series(pool, CounterKind::CpuPercent, range);
        prop_assert_eq!(rps.len(), cpu.len());
        for ((w1, _), (w2, _)) in rps.iter().zip(&cpu) {
            prop_assert_eq!(w1, w2);
        }
    }
}
