//! The window-stepped simulation engine.
//!
//! One `step` simulates one 120-second measurement window for the whole
//! fleet:
//!
//! 1. sample each pool's regional demand (diurnal curve × event factors);
//! 2. reroute demand away from lost datacenters ([`crate::routing`]);
//! 3. decide which servers are online (interventions ∩ maintenance ∩
//!    failures ∩ datacenter loss);
//! 4. split each pool's demand across its online servers
//!    ([`crate::pool::LoadBalancer`]);
//! 5. evaluate each server's black-box [`crate::service_model::ServiceModel`]
//!    and record the counters into a [`MetricStore`] plus the
//!    [`AvailabilityLog`].
//!
//! Capacity interventions (the paper's server-reduction experiments) are
//! scheduled with [`Simulation::schedule_resize`] and applied at window
//! granularity.

use std::collections::HashMap;

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::counter::{CounterKind, WorkloadTag};
use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{WindowIndex, WINDOWS_PER_DAY};
use headroom_workload::events::EventScript;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::catalog::MicroserviceKind;
use crate::error::ClusterError;
use crate::pool::LoadBalancer;
use crate::routing::redistribute;
use crate::service_model::ServiceModel;
use crate::topology::Fleet;

/// Which counters the simulation stores.
///
/// Full fleet runs over many days generate far too much data to keep every
/// counter; the paper's own pipeline discarded raw 100 ns samples for the
/// same reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingPolicy {
    /// Everything: the six Fig. 2 resource panels, workload, QoS, memory,
    /// and per-table tagged series.
    Full,
    /// Workload and QoS only (RPS, CPU, latency) — the planner's diet.
    #[default]
    Workload,
    /// Nothing is stored, but per-window snapshots still carry CPU/latency —
    /// for streaming observers at fleet scale (Figs. 12–13).
    SnapshotOnly,
    /// Nothing but the availability log (for 90-day availability studies);
    /// snapshot rows carry zeros for CPU/latency.
    AvailabilityOnly,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Master seed; every run with the same fleet/config/seed is identical.
    pub seed: u64,
    /// Which counters to store.
    pub recording: RecordingPolicy,
    /// Whether to fill the availability log.
    pub track_availability: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0, recording: RecordingPolicy::Workload, track_availability: true }
    }
}

/// Per-server state visible to observers for one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotRow {
    /// Server identity.
    pub server: ServerId,
    /// Owning pool.
    pub pool: PoolId,
    /// Hosting datacenter.
    pub datacenter: DatacenterId,
    /// Whether the server served traffic this window.
    pub online: bool,
    /// Requests per second routed to it (0 when offline).
    pub rps: f64,
    /// CPU percent (0 when offline).
    pub cpu_pct: f64,
    /// p95 latency in ms (0 when offline).
    pub latency_p95_ms: f64,
    /// Disk queue length (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub disk_queue: f64,
    /// Memory paging rate, pages/sec (0 when offline).
    pub memory_pages_per_sec: f64,
    /// Network throughput, Mbps both directions (0 when offline).
    pub network_mbps: f64,
}

/// One window's fleet-wide observation, passed to observers.
#[derive(Debug, Clone, Copy)]
pub struct WindowSnapshot<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// One row per server in the fleet.
    pub rows: &'a [SnapshotRow],
}

/// The contiguous run of snapshot rows belonging to one pool.
///
/// The simulator evaluates pools one after another, so each pool's rows are
/// naturally contiguous; recording the boundaries costs nothing and lets a
/// parallel observer hand each worker its pools' rows as plain sub-slices —
/// no per-row re-grouping serialization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSlice {
    /// The pool owning the rows.
    pub pool: PoolId,
    /// Index of the pool's first row in the snapshot.
    pub start: usize,
    /// Number of rows (the pool's physical size this window).
    pub len: usize,
}

/// A [`WindowSnapshot`] plus its pool partition, for sharded ingestion.
///
/// Produced by [`Simulation::step_snapshot_partitioned`]. Slices appear in
/// fleet deployment order (ascending pool id for built fleets) and cover
/// `rows` exactly, each pool once.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedSnapshot<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// One row per server in the fleet, grouped by pool.
    pub rows: &'a [SnapshotRow],
    /// One entry per pool, delimiting its rows.
    pub pools: &'a [PoolSlice],
}

impl<'a> PartitionedSnapshot<'a> {
    /// The rows of one pool.
    pub fn pool_rows(&self, slice: &PoolSlice) -> &'a [SnapshotRow] {
        &self.rows[slice.start..slice.start + slice.len]
    }

    /// The flat, partition-less view of the same window.
    pub fn as_snapshot(&self) -> WindowSnapshot<'a> {
        WindowSnapshot { window: self.window, rows: self.rows }
    }
}

/// The fleet simulator.
///
/// # Example
///
/// ```
/// use headroom_cluster::catalog::MicroserviceKind;
/// use headroom_cluster::sim::{SimConfig, Simulation};
/// use headroom_cluster::topology::FleetBuilder;
/// use headroom_telemetry::counter::CounterKind;
/// use headroom_telemetry::time::WindowRange;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fleet = FleetBuilder::new(1)
///     .datacenters(2)
///     .deploy_service(MicroserviceKind::B, 10)?
///     .build();
/// let mut sim = Simulation::new(fleet, Default::default(), SimConfig::default());
/// sim.run_windows(60);
/// let pool = sim.fleet().pools()[0].id;
/// let obs = sim.store().pool_paired_observations(
///     pool,
///     CounterKind::RequestsPerSec,
///     CounterKind::CpuPercent,
///     WindowRange::days(1.0),
/// );
/// assert!(!obs.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    fleet: Fleet,
    events: EventScript,
    config: SimConfig,
    store: MetricStore,
    availability: AvailabilityLog,
    rng: StdRng,
    next_window: WindowIndex,
    interventions: HashMap<u64, Vec<(PoolId, usize)>>,
    /// Scheduled response-profile changes (releases, hardware refreshes).
    model_swaps: HashMap<u64, Vec<(PoolId, ServiceModel)>>,
    lb: LoadBalancer,
    /// Pool indices grouped by service, each sorted by datacenter index.
    service_groups: Vec<(MicroserviceKind, Vec<usize>)>,
    snapshot: Vec<SnapshotRow>,
    pool_slices: Vec<PoolSlice>,
    /// Stateful failure tracking: server id → first window it is repaired.
    failed_until: HashMap<u32, u64>,
    /// Per-pool datacenter routing weight, precomputed at construction
    /// (topology never changes mid-run).
    pool_weight: Vec<f64>,
    /// Reusable per-window scratch, cleared and refilled every step — the
    /// warmed window path performs no heap allocation (asserted by a
    /// counting-allocator test in `crates/bench`).
    pool_demand: Vec<f64>,
    group_demands: Vec<f64>,
    group_lost: Vec<bool>,
    group_weights: Vec<f64>,
    online_flags: Vec<bool>,
    shares: Vec<f64>,
}

impl Simulation {
    /// Creates a simulation over `fleet` with scripted `events`.
    pub fn new(fleet: Fleet, events: EventScript, config: SimConfig) -> Self {
        let mut store = MetricStore::new();
        for pool in fleet.pools() {
            for server in &pool.servers {
                store.register_server(server.id, pool.id, pool.datacenter);
            }
        }
        let mut by_service: HashMap<MicroserviceKind, Vec<usize>> = HashMap::new();
        for (i, pool) in fleet.pools().iter().enumerate() {
            by_service.entry(pool.service).or_default().push(i);
        }
        let mut service_groups: Vec<(MicroserviceKind, Vec<usize>)> =
            by_service.into_iter().collect();
        service_groups.sort_by_key(|(k, _)| *k);
        for (_, idxs) in &mut service_groups {
            idxs.sort_by_key(|&i| fleet.pools()[i].datacenter);
        }
        let pool_weight: Vec<f64> = fleet
            .pools()
            .iter()
            .map(|p| {
                fleet
                    .datacenters()
                    .iter()
                    .find(|d| d.id == p.datacenter)
                    .map(|d| d.weight)
                    .unwrap_or(1.0)
            })
            .collect();
        Simulation {
            fleet,
            events,
            config,
            store,
            availability: AvailabilityLog::new(),
            rng: StdRng::seed_from_u64(config.seed),
            next_window: WindowIndex(0),
            interventions: HashMap::new(),
            model_swaps: HashMap::new(),
            lb: LoadBalancer::default(),
            service_groups,
            snapshot: Vec::new(),
            pool_slices: Vec::new(),
            failed_until: HashMap::new(),
            pool_weight,
            pool_demand: Vec::new(),
            group_demands: Vec::new(),
            group_lost: Vec::new(),
            group_weights: Vec::new(),
            online_flags: Vec::new(),
            shares: Vec::new(),
        }
    }

    /// The fleet being simulated.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The recorded metrics.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The availability log.
    pub fn availability(&self) -> &AvailabilityLog {
        &self.availability
    }

    /// The next window to be simulated.
    pub fn current_window(&self) -> WindowIndex {
        self.next_window
    }

    /// Schedules a pool resize: from `window` on, only `active` servers
    /// serve traffic. This is the paper's server-reduction experiment lever.
    ///
    /// # Errors
    ///
    /// - [`ClusterError::UnknownPool`] for a pool not in the fleet.
    /// - [`ClusterError::InvalidResize`] when `active` is zero or exceeds
    ///   the pool size.
    pub fn schedule_resize(
        &mut self,
        pool: PoolId,
        window: WindowIndex,
        active: usize,
    ) -> Result<(), ClusterError> {
        let p = self.fleet.pool(pool).ok_or(ClusterError::UnknownPool(pool))?;
        if active == 0 || active > p.size() {
            return Err(ClusterError::InvalidResize {
                pool,
                requested: active,
                available: p.size(),
            });
        }
        self.interventions.entry(window.0).or_default().push((pool, active));
        Ok(())
    }

    /// Schedules a response-profile change: from `window` on, `pool`'s
    /// servers respond per `model` — the shape of a software release or
    /// hardware refresh. Demand is untouched; only the workload→resource
    /// curves move, which is exactly what a streaming planner's drift
    /// detector must catch.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownPool`] for a pool not in the fleet.
    pub fn schedule_model_swap(
        &mut self,
        pool: PoolId,
        window: WindowIndex,
        model: ServiceModel,
    ) -> Result<(), ClusterError> {
        if self.fleet.pool(pool).is_none() {
            return Err(ClusterError::UnknownPool(pool));
        }
        self.model_swaps.entry(window.0).or_default().push((pool, model));
        Ok(())
    }

    /// Runs `n` windows.
    pub fn run_windows(&mut self, n: u64) {
        self.run_windows_observed(n, |_| {});
    }

    /// Runs `days` simulated days.
    pub fn run_days(&mut self, days: f64) {
        self.run_windows((days * WINDOWS_PER_DAY as f64).round() as u64);
    }

    /// Runs `n` windows, invoking `observer` after each with the full
    /// per-server snapshot (for streaming aggregation at fleet scale).
    pub fn run_windows_observed<F: FnMut(&WindowSnapshot<'_>)>(&mut self, n: u64, mut observer: F) {
        for _ in 0..n {
            let snap = self.step_snapshot();
            observer(&snap);
        }
    }

    /// Simulates exactly one window and returns its snapshot.
    ///
    /// This is the single-step form of [`Simulation::run_windows_observed`]:
    /// because it returns control between windows, a caller can feed the
    /// snapshot to a streaming planner *and* act on the planner's output
    /// (e.g. [`Simulation::schedule_resize`]) before the next window runs —
    /// the closed control loop that a callback observer cannot express.
    pub fn step_snapshot(&mut self) -> WindowSnapshot<'_> {
        self.step();
        WindowSnapshot { window: WindowIndex(self.next_window.0 - 1), rows: &self.snapshot }
    }

    /// Simulates exactly one window and returns its snapshot with the pool
    /// partition attached — [`Simulation::step_snapshot`] for sharded
    /// observers (e.g. a parallel sweep engine) that want per-pool row
    /// slices without re-grouping the flat row array.
    pub fn step_snapshot_partitioned(&mut self) -> PartitionedSnapshot<'_> {
        self.step();
        PartitionedSnapshot {
            window: WindowIndex(self.next_window.0 - 1),
            rows: &self.snapshot,
            pools: &self.pool_slices,
        }
    }

    /// Consumes the simulation, returning the fleet, metric store and
    /// availability log.
    pub fn into_parts(self) -> (Fleet, MetricStore, AvailabilityLog) {
        (self.fleet, self.store, self.availability)
    }

    fn step(&mut self) {
        let w = self.next_window;
        self.next_window = WindowIndex(w.0 + 1);
        let t = w.midpoint();
        let utc_hour = t.hour_of_day();
        self.snapshot.clear();
        self.pool_slices.clear();

        // Apply interventions scheduled for this window.
        if let Some(resizes) = self.interventions.remove(&w.0) {
            for (pool_id, active) in resizes {
                if let Some(pool) = self.fleet.pool_mut(pool_id) {
                    // Validated at scheduling time; ignore failure defensively.
                    let _ = pool.resize_active(active);
                }
            }
        }

        // Apply scheduled response-profile changes (releases / hardware
        // refreshes): the pool's black-box curves move, demand does not.
        if let Some(swaps) = self.model_swaps.remove(&w.0) {
            for (pool_id, model) in swaps {
                if let Some(pool) = self.fleet.pool_mut(pool_id) {
                    pool.model = model;
                }
            }
        }

        // Demand per pool, grouped by service for failover rerouting.
        // Everything below runs on reusable field buffers: a warmed window
        // touches no allocator.
        self.pool_demand.clear();
        self.pool_demand.resize(self.fleet.pools().len(), 0.0);
        for gi in 0..self.service_groups.len() {
            self.group_demands.clear();
            self.group_lost.clear();
            self.group_weights.clear();
            for k in 0..self.service_groups[gi].1.len() {
                let pi = self.service_groups[gi].1[k];
                let pool = &self.fleet.pools()[pi];
                let base = pool.demand.demand(t, &mut self.rng);
                let factor = self.events.demand_factor(pool.datacenter, t);
                self.group_demands.push(base * factor);
                self.group_lost.push(self.events.datacenter_lost(pool.datacenter, t));
                self.group_weights.push(self.pool_weight[pi]);
            }
            redistribute(&mut self.group_demands, &self.group_lost, &self.group_weights);
            for k in 0..self.service_groups[gi].1.len() {
                let pi = self.service_groups[gi].1[k];
                self.pool_demand[pi] = self.group_demands[k];
            }
        }

        // Simulate each pool.
        let track_availability = self.config.track_availability;
        let recording = self.config.recording;
        for pi in 0..self.fleet.pools().len() {
            let slice_start = self.snapshot.len();
            let demand = self.pool_demand[pi];
            let (pool_id, dc, local_hour, pool_size, dc_lost, net_scale) = {
                let pool = &self.fleet.pools()[pi];
                (
                    pool.id,
                    pool.datacenter,
                    pool.local_hour(utc_hour),
                    pool.size(),
                    self.events.datacenter_lost(pool.datacenter, t),
                    pool.net_scale,
                )
            };

            // Decide online status per server. Failures are tracked
            // statefully: one hash draw per server-window, with the repair
            // interval carried in `failed_until`.
            self.online_flags.clear();
            {
                let pool = &self.fleet.pools()[pi];
                for (idx, server) in pool.servers.iter().enumerate() {
                    let maint = pool.maintenance.is_offline(idx, pool_size, w, local_hour);
                    let failed = match pool.failures {
                        Some(f) => {
                            let key = server.id.0;
                            let down = self
                                .failed_until
                                .get(&key)
                                .map(|&until| w.0 < until)
                                .unwrap_or(false);
                            if down {
                                true
                            } else if f.fails_at(key as u64, w) {
                                self.failed_until.insert(key, w.0 + f.repair_windows);
                                true
                            } else {
                                false
                            }
                        }
                        None => false,
                    };
                    self.online_flags.push(server.is_active() && !maint && !failed && !dc_lost);
                }
            }
            let online_count = self.online_flags.iter().filter(|&&o| o).count();
            let lb = self.lb;
            lb.distribute_into(&mut self.shares, demand, online_count, &mut self.rng);

            // Evaluate servers.
            let mut next_share = 0usize;
            for idx in 0..pool_size {
                let online = self.online_flags[idx];
                let (server_id, generation, windows_online) = {
                    let s = &self.fleet.pools()[pi].servers[idx];
                    (s.id, s.generation, s.windows_online)
                };

                if track_availability {
                    self.availability.record(server_id, w, online);
                }

                if !online {
                    if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                        pool.servers[idx].tick_offline();
                    }
                    self.snapshot.push(SnapshotRow {
                        server: server_id,
                        pool: pool_id,
                        datacenter: dc,
                        online: false,
                        rps: 0.0,
                        cpu_pct: 0.0,
                        latency_p95_ms: 0.0,
                        disk_queue: 0.0,
                        memory_pages_per_sec: 0.0,
                        network_mbps: 0.0,
                    });
                    continue;
                }

                let rps = self.shares.get(next_share).copied().unwrap_or(0.0);
                next_share += 1;
                let (cpu, lat_avg, lat_p95, disk_queue, mem_pages, net_mbps) = match recording {
                    RecordingPolicy::Full => {
                        let m = {
                            let pool = &self.fleet.pools()[pi];
                            pool.model.window_metrics(
                                rps,
                                generation,
                                w,
                                windows_online,
                                server_id.0 as u64 % 97,
                                pool.net_scale,
                                &mut self.rng,
                            )
                        };
                        self.store.record(server_id, CounterKind::CpuPercent, w, m.cpu_pct);
                        self.store.record(server_id, CounterKind::RequestsPerSec, w, rps);
                        self.store.record(
                            server_id,
                            CounterKind::LatencyAvgMs,
                            w,
                            m.latency_avg_ms,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::LatencyP95Ms,
                            w,
                            m.latency_p95_ms,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::DiskReadBytesPerSec,
                            w,
                            m.disk_read_bytes,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::DiskWriteBytesPerSec,
                            w,
                            m.disk_write_bytes,
                        );
                        self.store.record(server_id, CounterKind::DiskQueueLength, w, m.disk_queue);
                        self.store.record(
                            server_id,
                            CounterKind::MemoryPagesPerSec,
                            w,
                            m.memory_pages_per_sec,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::NetworkBytesPerSec,
                            w,
                            m.network_bytes,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::NetworkPacketsPerSec,
                            w,
                            m.network_pkts,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::ErrorsPerSec,
                            w,
                            m.errors_per_sec,
                        );
                        self.store.record(
                            server_id,
                            CounterKind::MemoryResidentMb,
                            w,
                            m.memory_resident_mb,
                        );
                        for (ti, (&t_rps, &t_cpu)) in
                            m.table_rps.iter().zip(&m.table_cpu).enumerate()
                        {
                            let tag = WorkloadTag::Workload(ti as u8);
                            self.store.record_tagged(
                                server_id,
                                CounterKind::RequestsPerSec,
                                tag,
                                w,
                                t_rps,
                            );
                            self.store.record_tagged(
                                server_id,
                                CounterKind::CpuPercent,
                                tag,
                                w,
                                t_cpu,
                            );
                        }
                        (
                            m.cpu_pct,
                            m.latency_avg_ms,
                            m.latency_p95_ms,
                            m.disk_queue,
                            m.memory_pages_per_sec,
                            m.network_bytes * 8.0 / 1e6,
                        )
                    }
                    RecordingPolicy::Workload => {
                        let (cpu, lat_avg, lat_p95, dq, pg, nm) = {
                            let model = &self.fleet.pools()[pi].model;
                            let (cpu, lat_avg, lat_p95) =
                                model.window_metrics_lite(rps, generation, &mut self.rng);
                            // Noise-free resource means: no extra RNG draws,
                            // so the recorded CPU/latency stream is identical
                            // to the pre-multi-resource simulator.
                            (
                                cpu,
                                lat_avg,
                                lat_p95,
                                model.disk_queue_mean(rps),
                                model.paging_mean(rps),
                                model.network_mbps_mean(rps, net_scale),
                            )
                        };
                        self.store.record(server_id, CounterKind::CpuPercent, w, cpu);
                        self.store.record(server_id, CounterKind::RequestsPerSec, w, rps);
                        self.store.record(server_id, CounterKind::LatencyAvgMs, w, lat_avg);
                        self.store.record(server_id, CounterKind::LatencyP95Ms, w, lat_p95);
                        (cpu, lat_avg, lat_p95, dq, pg, nm)
                    }
                    RecordingPolicy::SnapshotOnly => {
                        let model = &self.fleet.pools()[pi].model;
                        let (cpu, lat_avg, lat_p95) =
                            model.window_metrics_lite(rps, generation, &mut self.rng);
                        (
                            cpu,
                            lat_avg,
                            lat_p95,
                            model.disk_queue_mean(rps),
                            model.paging_mean(rps),
                            model.network_mbps_mean(rps, net_scale),
                        )
                    }
                    RecordingPolicy::AvailabilityOnly => (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                };
                let _ = lat_avg;

                if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                    pool.servers[idx].tick_online();
                }
                self.snapshot.push(SnapshotRow {
                    server: server_id,
                    pool: pool_id,
                    datacenter: dc,
                    online: true,
                    rps,
                    cpu_pct: cpu,
                    latency_p95_ms: lat_p95,
                    disk_queue,
                    memory_pages_per_sec: mem_pages,
                    network_mbps: net_mbps,
                });
            }
            self.pool_slices.push(PoolSlice {
                pool: pool_id,
                start: slice_start,
                len: self.snapshot.len() - slice_start,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FleetBuilder;
    use headroom_telemetry::time::WindowRange;
    use headroom_workload::events;

    fn small_fleet(seed: u64) -> Fleet {
        let spec = MicroserviceKind::B
            .spec()
            .with_practice(crate::maintenance::AvailabilityPractice::WellManaged);
        FleetBuilder::new(seed)
            .datacenters(3)
            .without_failures()
            .without_incidents()
            .deploy_with_spec(&spec, 10, spec.peak_rps_per_server)
            .unwrap()
            .build()
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut sim =
                Simulation::new(small_fleet(3), EventScript::empty(), SimConfig::default());
            sim.run_windows(50);
            sim
        };
        let a = mk();
        let b = mk();
        let pool = a.fleet().pools()[0].id;
        let range = WindowRange::new(WindowIndex(0), WindowIndex(50));
        assert_eq!(
            a.store().pool_mean_series(pool, CounterKind::CpuPercent, range),
            b.store().pool_mean_series(pool, CounterKind::CpuPercent, range)
        );
    }

    #[test]
    fn cpu_tracks_workload_linearly() {
        let mut sim = Simulation::new(small_fleet(1), EventScript::empty(), SimConfig::default());
        sim.run_days(1.0);
        let pool = sim.fleet().pools()[0].id;
        let obs = sim.store().pool_paired_observations(
            pool,
            CounterKind::RequestsPerSec,
            CounterKind::CpuPercent,
            WindowRange::days(1.0),
        );
        assert!(obs.len() > 700);
        let fit = headroom_stats::LinearFit::fit_paired(&obs).unwrap();
        assert!(fit.r_squared > 0.95, "r2 {}", fit.r_squared);
        assert!((fit.slope - 0.028).abs() < 0.004, "slope {}", fit.slope);
    }

    #[test]
    fn resize_increases_per_server_load() {
        let mut sim = Simulation::new(small_fleet(2), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        sim.schedule_resize(pool, WindowIndex(720), 7).unwrap();
        sim.run_days(2.0);
        let store = sim.store();
        let day1: Vec<f64> = store
            .pool_mean_series(pool, CounterKind::RequestsPerSec, WindowRange::day(0))
            .iter()
            .map(|(_, v)| *v)
            .collect();
        let day2: Vec<f64> = store
            .pool_mean_series(pool, CounterKind::RequestsPerSec, WindowRange::day(1))
            .iter()
            .map(|(_, v)| *v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&day2) / mean(&day1);
        assert!((ratio - 10.0 / 7.0).abs() < 0.12, "per-server load ratio {ratio}");
        // Active-server count drops in the store too.
        assert_eq!(store.pool_active_servers(pool, WindowIndex(800)), 7);
    }

    #[test]
    fn resize_validation() {
        let mut sim = Simulation::new(small_fleet(2), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        assert!(matches!(
            sim.schedule_resize(PoolId(999), WindowIndex(0), 5),
            Err(ClusterError::UnknownPool(_))
        ));
        assert!(matches!(
            sim.schedule_resize(pool, WindowIndex(0), 0),
            Err(ClusterError::InvalidResize { .. })
        ));
        assert!(matches!(
            sim.schedule_resize(pool, WindowIndex(0), 11),
            Err(ClusterError::InvalidResize { .. })
        ));
    }

    #[test]
    fn dc_loss_reroutes_demand() {
        let fleet = small_fleet(4);
        let dc0 = fleet.datacenters()[0].id;
        let survivor_pool = fleet.pools()[1].id;
        let lost_pool = fleet.pools()[0].id;
        // Event in the middle of day 0, lasting 2 hours.
        let script =
            events::two_hour_dc_loss(dc0, headroom_telemetry::time::SimTime::from_hours(12.0));
        let mut sim = Simulation::new(fleet, script, SimConfig::default());
        sim.run_days(1.0);
        let store = sim.store();
        // During the event the lost pool has no active servers.
        let event_window = WindowIndex(13 * 30); // 13:00
        assert_eq!(store.pool_active_servers(lost_pool, event_window), 0);
        // The survivor sees elevated RPS/server vs the same hour next...
        // compare event hour to one hour before event start.
        let before = store
            .pool_window_mean(survivor_pool, CounterKind::RequestsPerSec, WindowIndex(11 * 30))
            .unwrap();
        let during = store
            .pool_window_mean(survivor_pool, CounterKind::RequestsPerSec, event_window)
            .unwrap();
        assert!(during > before * 1.2, "before {before}, during {during}");
    }

    #[test]
    fn availability_tracks_maintenance_practice() {
        let fleet = FleetBuilder::new(9)
            .datacenters(1)
            .without_failures()
            .deploy_service(MicroserviceKind::C, 40) // Heavy ⇒ ~90.5%
            .unwrap()
            .build();
        let mut sim = Simulation::new(
            fleet,
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::AvailabilityOnly, ..SimConfig::default() },
        );
        sim.run_days(7.0);
        let mean = sim.availability().fleet_mean_availability().unwrap();
        assert!((mean - 0.905).abs() < 0.04, "availability {mean}");
        // AvailabilityOnly stores no counters.
        assert_eq!(sim.store().sample_count(), 0);
    }

    #[test]
    fn observer_sees_every_server() {
        let fleet = small_fleet(5);
        let total_servers = fleet.server_count();
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let mut rows_seen = 0usize;
        let mut windows = Vec::new();
        sim.run_windows_observed(3, |snap| {
            rows_seen += snap.rows.len();
            windows.push(snap.window);
        });
        assert_eq!(rows_seen, 3 * total_servers);
        assert_eq!(windows, vec![WindowIndex(0), WindowIndex(1), WindowIndex(2)]);
    }

    #[test]
    fn full_recording_includes_fig2_counters() {
        let mut sim = Simulation::new(
            small_fleet(6),
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::Full, ..SimConfig::default() },
        );
        sim.run_windows(10);
        let server = sim.fleet().pools()[0].servers[0].id;
        for counter in CounterKind::FIG2_RESOURCES {
            assert!(sim.store().series(server, counter).is_some(), "missing counter {counter}");
        }
    }

    #[test]
    fn partitioned_snapshot_covers_rows_pool_by_pool() {
        let fleet = small_fleet(8);
        let pool_count = fleet.pools().len();
        let total_servers = fleet.server_count();
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let snap = sim.step_snapshot_partitioned();
        assert_eq!(snap.pools.len(), pool_count);
        assert_eq!(snap.rows.len(), total_servers);
        let mut cursor = 0usize;
        for slice in snap.pools {
            assert_eq!(slice.start, cursor, "slices tile the row array in order");
            let rows = snap.pool_rows(slice);
            assert!(!rows.is_empty());
            assert!(rows.iter().all(|r| r.pool == slice.pool), "slice rows belong to its pool");
            cursor += slice.len;
        }
        assert_eq!(cursor, snap.rows.len(), "every row is covered exactly once");
        // The flat view is the same window.
        assert_eq!(snap.as_snapshot().window, snap.window);
        assert_eq!(snap.as_snapshot().rows.len(), total_servers);
    }

    #[test]
    fn snapshot_rows_carry_resource_counters() {
        use headroom_workload::resource_profile::ResourceProfile;
        let mut fleet = small_fleet(13);
        // Make pool 0 disk-coupled so its counters respond to workload.
        fleet.pools_mut()[0].model =
            fleet.pools()[0].model.clone().with_resource_profile(&ResourceProfile::disk_heavy());
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let snap = sim.step_snapshot();
        let online: Vec<&SnapshotRow> = snap.rows.iter().filter(|r| r.online).collect();
        assert!(!online.is_empty());
        for row in &online {
            assert!(row.network_mbps > 0.0, "network tracks workload: {row:?}");
            assert!(row.memory_pages_per_sec > 0.0);
            assert!(row.disk_queue > 0.0);
        }
        // Disk-coupled pool: queue depth grows with per-server RPS.
        let p0: Vec<&&SnapshotRow> =
            online.iter().filter(|r| r.pool == snap.rows[0].pool).collect();
        let expected = 1.0 + 0.02 * p0[0].rps;
        assert!(
            (p0[0].disk_queue - expected).abs() < 1e-9,
            "disk queue follows the profile: {} vs {expected}",
            p0[0].disk_queue
        );
    }

    #[test]
    fn availability_only_snapshot_resources_are_zero() {
        let mut sim = Simulation::new(
            small_fleet(14),
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::AvailabilityOnly, ..SimConfig::default() },
        );
        let snap = sim.step_snapshot();
        assert!(snap.rows.iter().all(|r| r.disk_queue == 0.0
            && r.memory_pages_per_sec == 0.0
            && r.network_mbps == 0.0));
    }

    #[test]
    fn partitioned_and_flat_stepping_agree() {
        let mk = |partitioned: bool| {
            let mut sim =
                Simulation::new(small_fleet(11), EventScript::empty(), SimConfig::default());
            let mut rows = Vec::new();
            for _ in 0..30 {
                if partitioned {
                    rows.extend(sim.step_snapshot_partitioned().rows.to_vec());
                } else {
                    rows.extend(sim.step_snapshot().rows.to_vec());
                }
            }
            rows
        };
        assert_eq!(mk(true), mk(false), "partitioning changes nothing but the view");
    }

    #[test]
    fn model_swap_changes_response_profile_at_window() {
        let mut sim = Simulation::new(small_fleet(12), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        // A release that makes every request twice as dear, mid-run.
        let release = sim.fleet().pools()[0].model.clone().with_cpu_per_rps_scaled(2.0);
        sim.schedule_model_swap(pool, WindowIndex(360), release).unwrap();
        sim.run_days(1.0);
        let store = sim.store();
        let fit_over = |lo: u64, hi: u64| {
            let obs = store.pool_paired_observations(
                pool,
                CounterKind::RequestsPerSec,
                CounterKind::CpuPercent,
                WindowRange::new(WindowIndex(lo), WindowIndex(hi)),
            );
            headroom_stats::LinearFit::fit_paired(&obs).unwrap().slope
        };
        let before = fit_over(0, 360);
        let after = fit_over(360, 720);
        assert!(
            (after / before - 2.0).abs() < 0.25,
            "cpu-per-rps slope doubled: before {before:.4}, after {after:.4}"
        );
    }

    #[test]
    fn model_swap_validates_pool() {
        let mut sim = Simulation::new(small_fleet(12), EventScript::empty(), SimConfig::default());
        let model = sim.fleet().pools()[0].model.clone();
        assert!(matches!(
            sim.schedule_model_swap(PoolId(999), WindowIndex(0), model),
            Err(ClusterError::UnknownPool(_))
        ));
    }

    #[test]
    fn table_service_records_tagged_series() {
        let fleet = FleetBuilder::new(7)
            .datacenters(1)
            .without_failures()
            .without_incidents()
            .deploy_service(MicroserviceKind::A, 5)
            .unwrap()
            .build();
        let mut sim = Simulation::new(
            fleet,
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::Full, ..SimConfig::default() },
        );
        sim.run_windows(5);
        let server = sim.fleet().pools()[0].servers[0].id;
        assert!(sim
            .store()
            .series_tagged(server, CounterKind::RequestsPerSec, WorkloadTag::Workload(0))
            .is_some());
        assert!(sim
            .store()
            .series_tagged(server, CounterKind::CpuPercent, WorkloadTag::Workload(1))
            .is_some());
    }
}
