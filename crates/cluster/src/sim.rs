//! The window-stepped simulation engine.
//!
//! One `step` simulates one 120-second measurement window for the whole
//! fleet:
//!
//! 1. sample each pool's regional demand (diurnal curve × event factors);
//! 2. reroute demand away from lost datacenters ([`crate::routing`]);
//! 3. decide which servers are online (interventions ∩ maintenance ∩
//!    failures ∩ datacenter loss);
//! 4. split each pool's demand across its online servers
//!    ([`crate::pool::LoadBalancer`]);
//! 5. evaluate each server's black-box [`crate::service_model::ServiceModel`]
//!    and record the counters into a [`MetricStore`] plus the
//!    [`AvailabilityLog`].
//!
//! Capacity interventions (the paper's server-reduction experiments) are
//! scheduled with [`Simulation::schedule_resize`] and applied at window
//! granularity.

use std::collections::HashMap;

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::counter::{CounterKind, WorkloadTag};
use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{SimTime, WindowIndex, WINDOWS_PER_DAY};
use headroom_workload::events::EventScript;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::catalog::MicroserviceKind;
use crate::columns::{ColumnarSnapshot, SnapshotColumns};
use crate::error::ClusterError;
use crate::hardware::HardwareGeneration;
use crate::pool::{LoadBalancer, Pool};
use crate::routing::redistribute;
use crate::service_model::{LiteColumnsIn, LiteColumnsOut, LiteNoise, ServiceModel};
use crate::topology::Fleet;

/// Which counters the simulation stores.
///
/// Full fleet runs over many days generate far too much data to keep every
/// counter; the paper's own pipeline discarded raw 100 ns samples for the
/// same reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingPolicy {
    /// Everything: the six Fig. 2 resource panels, workload, QoS, memory,
    /// and per-table tagged series.
    Full,
    /// Workload and QoS only (RPS, CPU, latency) — the planner's diet.
    #[default]
    Workload,
    /// Nothing is stored, but per-window snapshots still carry CPU/latency —
    /// for streaming observers at fleet scale (Figs. 12–13).
    SnapshotOnly,
    /// Nothing but the availability log (for 90-day availability studies);
    /// snapshot rows carry zeros for CPU/latency.
    AvailabilityOnly,
}

/// The in-memory snapshot layout used by layout-generic drivers.
///
/// All layouts are produced by the same window phases, share the same RNG
/// stream, and carry bit-identical values (`repro colsim` gates this for
/// every recording policy), so the switch is purely a data-layout knob:
/// [`Streamed`] defers the metric kernels to the consumer's tile passes
/// (the default hot path — fleet columns never round-trip DRAM),
/// [`Columnar`] materialises per-pool-contiguous columns, and [`Rows`]
/// materialises the legacy [`SnapshotRow`] structs; the two materialised
/// layouts are kept for A/B property tests and row-oriented observers.
///
/// Explicit calls pick their own layout regardless
/// ([`Simulation::step_snapshot`] / [`Simulation::step_snapshot_partitioned`]
/// are always rows, [`Simulation::step_columns_partitioned`] always
/// columns, [`Simulation::step_streamed`] always streams); the config
/// switch steers drivers that accept any, such as `OnlinePlanner::run`.
///
/// [`Streamed`]: SnapshotLayout::Streamed
/// [`Columnar`]: SnapshotLayout::Columnar
/// [`Rows`]: SnapshotLayout::Rows
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotLayout {
    /// Metric generation fused into the consumer: the simulator runs only
    /// the sequential prefix (demand, routing, online flags, noise) and
    /// hands out kernel inputs; the observer evaluates the response-model
    /// kernels tile-at-a-time via [`StreamedKernels::step_tile_columns`].
    #[default]
    Streamed,
    /// Struct-of-arrays column buffers, reused across windows.
    Columnar,
    /// Array of [`SnapshotRow`] structs — the legacy layout.
    Rows,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Master seed; every run with the same fleet/config/seed is identical.
    pub seed: u64,
    /// Which counters to store.
    pub recording: RecordingPolicy,
    /// Whether to fill the availability log.
    pub track_availability: bool,
    /// The snapshot layout used by layout-generic drivers.
    pub layout: SnapshotLayout,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            recording: RecordingPolicy::Workload,
            track_availability: true,
            layout: SnapshotLayout::default(),
        }
    }
}

/// Per-server state visible to observers for one window.
///
/// The six metric fields are the streaming subset of the paper's Fig. 2
/// counter set: workload (RPS), the two QoS-side signals (CPU, p95
/// latency), and the three secondary resources the multi-resource planner
/// fits (disk queue, paging rate, network throughput) — in that order.
/// Every metric is `0.0` when the server is offline, and *all six* are
/// `0.0` except RPS under [`RecordingPolicy::AvailabilityOnly`] (the RPS
/// field always carries the routed share, so availability studies still
/// see demand). On the other cheap recording paths the three secondary
/// resources are noise-free means — no extra RNG draws, so the recorded
/// CPU/latency streams match the pre-multi-resource simulator exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotRow {
    /// Server identity.
    pub server: ServerId,
    /// Owning pool.
    pub pool: PoolId,
    /// Hosting datacenter.
    pub datacenter: DatacenterId,
    /// Whether the server served traffic this window.
    pub online: bool,
    /// Requests per second routed to it (0 when offline; carried under
    /// every recording policy).
    pub rps: f64,
    /// CPU percent (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub cpu_pct: f64,
    /// p95 latency in ms (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub latency_p95_ms: f64,
    /// Disk queue length (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub disk_queue: f64,
    /// Memory paging rate, pages/sec (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub memory_pages_per_sec: f64,
    /// Network throughput, Mbps both directions (0 when offline or under
    /// [`RecordingPolicy::AvailabilityOnly`]).
    pub network_mbps: f64,
}

/// One window's fleet-wide observation, passed to observers.
#[derive(Debug, Clone, Copy)]
pub struct WindowSnapshot<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// One row per server in the fleet.
    pub rows: &'a [SnapshotRow],
}

/// The contiguous run of snapshot rows belonging to one pool.
///
/// The simulator evaluates pools one after another, so each pool's rows are
/// naturally contiguous; recording the boundaries costs nothing and lets a
/// parallel observer hand each worker its pools' rows as plain sub-slices —
/// no per-row re-grouping serialization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSlice {
    /// The pool owning the rows.
    pub pool: PoolId,
    /// Index of the pool's first row in the snapshot.
    pub start: usize,
    /// Number of rows (the pool's physical size this window).
    pub len: usize,
}

/// A [`WindowSnapshot`] plus its pool partition, for sharded ingestion.
///
/// Produced by [`Simulation::step_snapshot_partitioned`]. Slices appear in
/// fleet deployment order (ascending pool id for built fleets) and cover
/// `rows` exactly, each pool once.
#[derive(Debug, Clone, Copy)]
pub struct PartitionedSnapshot<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// One row per server in the fleet, grouped by pool.
    pub rows: &'a [SnapshotRow],
    /// One entry per pool, delimiting its rows.
    pub pools: &'a [PoolSlice],
}

impl<'a> PartitionedSnapshot<'a> {
    /// The rows of one pool.
    pub fn pool_rows(&self, slice: &PoolSlice) -> &'a [SnapshotRow] {
        &self.rows[slice.start..slice.start + slice.len]
    }

    /// The flat, partition-less view of the same window.
    pub fn as_snapshot(&self) -> WindowSnapshot<'a> {
        WindowSnapshot { window: self.window, rows: self.rows }
    }
}

/// One window handed out by [`Simulation::step_streamed`]: the pool
/// partition plus either kernel inputs (the streaming hot path) or
/// already-materialised columns (the recording policies whose sequential
/// store writes cannot be deferred).
///
/// The streamed pipeline's contract is bit-identity with the materialised
/// paths: the sequential prefix draws the exact RNG stream of
/// [`Simulation::step_columns_partitioned`], and
/// [`StreamedKernels::step_tile_columns`] evaluates the exact element-wise
/// kernels the materialised step would, so whatever the consumer computes
/// from a streamed window equals what it would have computed from the
/// columns — without the fleet-sized column round-trip through DRAM.
#[derive(Debug, Clone, Copy)]
pub struct StreamedWindow<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// One entry per pool, delimiting its lanes; identical geometry to the
    /// materialised layouts' partition. Slice `i` belongs to fleet pool
    /// index `i` (the order pools were deployed), which is how
    /// [`StreamedKernels::step_tile_columns`] finds a slice's model.
    pub pools: &'a [PoolSlice],
    /// Where this window's metrics live (or how to compute them).
    pub source: StreamedSource<'a>,
}

/// The backing of a [`StreamedWindow`].
#[derive(Debug, Clone, Copy)]
pub enum StreamedSource<'a> {
    /// Metrics are already materialised in column buffers.
    /// [`RecordingPolicy::Full`] and [`RecordingPolicy::Workload`] land
    /// here: their per-server store writes interleave with metric
    /// evaluation and cannot move into a consumer's parallel tiles (and
    /// [`RecordingPolicy::AvailabilityOnly`], whose "metrics" are zeros,
    /// costs nothing to materialise). Trivially bit-identical.
    Columns(&'a SnapshotColumns),
    /// Kernel inputs only — [`RecordingPolicy::SnapshotOnly`], the
    /// fleet-scale policy: the consumer evaluates the response-model
    /// kernels per tile while the slice is cache-resident.
    Kernels(StreamedKernels<'a>),
}

/// The kernel inputs of one streamed window: workload and noise columns,
/// the online bitmask, hardware generations, and per-pool response models.
/// `Copy` + `Sync` — workers share it read-only across a parallel sweep.
#[derive(Debug, Clone, Copy)]
pub struct StreamedKernels<'a> {
    /// RPS column + online bitmask (+ identity columns); the six metric
    /// columns are stale and deliberately unreachable through this view.
    columns: &'a SnapshotColumns,
    hw: &'a [HardwareGeneration],
    noise_cpu: &'a [f64],
    noise_p95: &'a [f64],
    noise_avg: &'a [f64],
    /// Deduplicated per-pool response models — entry `i` models partition
    /// slice `i`.
    cache: &'a KernelCache,
}

/// Deduplicated per-pool kernel parameters for the streamed path: one
/// [`ServiceModel`] per *distinct* model, a dense pool-index → model map,
/// and a dense per-pool `net_scale` column. Fleets deploy a handful of
/// service specs across up to millions of pools, so the per-tile kernel
/// evaluation reads a few cache-resident models through 12 bytes per pool
/// (index + scale) instead of streaming the full fleet-length [`Pool`]
/// array (hundreds of bytes per pool, of which the kernels use ~150)
/// through DRAM every window.
///
/// Deduplication compares models **bit for bit**
/// ([`ServiceModel::bits_eq`]), so evaluating a shared model is guaranteed
/// to produce exactly the bytes the pool's own model would have — the
/// cache cannot perturb the streamed path's bit-identity contract.
/// Building is `O(pools × distinct models)`; a pathological fleet where
/// every pool's model differs degrades the build to quadratic but keeps
/// lookups exact (and such a fleet gains nothing from any cache).
#[derive(Debug, Clone, Default)]
pub struct KernelCache {
    models: Vec<ServiceModel>,
    index: Vec<u32>,
    net_scales: Vec<f64>,
}

impl KernelCache {
    /// Builds a cache over `pools` (deployment order — lane `i` answers
    /// for partition slice `i`, matching [`StreamedWindow::pools`]).
    pub fn build(pools: &[Pool]) -> KernelCache {
        let mut cache = KernelCache::default();
        cache.rebuild(pools);
        cache
    }

    /// Rebuilds in place, reusing the allocations of a previous build
    /// where possible. Call after anything that can change a pool's model
    /// or network shape (a scheduled model swap); per-window state —
    /// demand, online servers, resizes — never touches the cache.
    pub fn rebuild(&mut self, pools: &[Pool]) {
        self.models.clear();
        self.index.clear();
        self.net_scales.clear();
        self.index.reserve(pools.len());
        self.net_scales.reserve(pools.len());
        for pool in pools {
            let found = self.models.iter().position(|m| m.bits_eq(&pool.model));
            let mi = found.unwrap_or_else(|| {
                self.models.push(pool.model.clone());
                self.models.len() - 1
            });
            self.index.push(u32::try_from(mi).expect("model count fits u32"));
            self.net_scales.push(pool.net_scale);
        }
    }

    /// Pools covered by the cache.
    pub fn pools(&self) -> usize {
        self.index.len()
    }

    /// Distinct models after deduplication.
    pub fn distinct(&self) -> usize {
        self.models.len()
    }

    fn entry(&self, pool_index: usize) -> (&ServiceModel, f64) {
        (&self.models[self.index[pool_index] as usize], self.net_scales[pool_index])
    }
}

/// Caller-provided output slices for one pool's
/// [`StreamedKernels::step_tile_columns`] evaluation, each exactly the
/// pool's slice length. On return they hold what the materialised columnar
/// step would have written for those lanes (offline lanes `+0.0`).
#[derive(Debug)]
pub struct StreamedTileOut<'a> {
    /// CPU percent per lane.
    pub cpu: &'a mut [f64],
    /// Average latency per lane, ms (scratch — the materialised column
    /// path never stores it either under `SnapshotOnly`).
    pub latency_avg: &'a mut [f64],
    /// p95 latency per lane, ms.
    pub latency_p95: &'a mut [f64],
    /// Disk queue length per lane.
    pub disk_queue: &'a mut [f64],
    /// Memory paging rate per lane, pages/sec.
    pub memory_pages_per_sec: &'a mut [f64],
    /// Network throughput per lane, Mbps.
    pub network_mbps: &'a mut [f64],
}

impl<'a> StreamedKernels<'a> {
    /// Assembles a streamed-kernel view from recorded parts — the replay
    /// entry point for harnesses that drive the streamed ingestion path
    /// over pre-recorded windows (workload + online + noise) without a
    /// live simulation. `columns` needs only its RPS column and online
    /// bitmask filled (offline lanes `0.0`); the metric columns are never
    /// read. `cache` ([`KernelCache::build`] over the fleet's pools) must
    /// cover partition slice `i` of the window at entry `i`, and `hw` plus
    /// the three noise slices are fleet-length, lane-aligned with the
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics when `hw` or a noise slice is shorter than the RPS column.
    pub fn from_parts(
        columns: &'a SnapshotColumns,
        hw: &'a [HardwareGeneration],
        noise_cpu: &'a [f64],
        noise_p95: &'a [f64],
        noise_avg: &'a [f64],
        cache: &'a KernelCache,
    ) -> StreamedKernels<'a> {
        let lanes = columns.rps().len();
        assert!(
            hw.len() >= lanes
                && noise_cpu.len() >= lanes
                && noise_p95.len() >= lanes
                && noise_avg.len() >= lanes,
            "streamed kernel inputs must cover every lane"
        );
        StreamedKernels { columns, hw, noise_cpu, noise_p95, noise_avg, cache }
    }

    /// The fleet-length RPS column (offline lanes `0.0`).
    pub fn rps(&self) -> &'a [f64] {
        self.columns.rps()
    }

    /// Serving-server count over lanes `start..start + len` — the masked
    /// popcount the materialised columnar aggregation uses.
    pub fn online_count(&self, start: usize, len: usize) -> usize {
        self.columns.online_count(start, len)
    }

    /// Evaluates the response-model kernels for pool `pool_index`'s lanes
    /// `start..start + len` into `out` — the per-tile half of the fused
    /// pipeline: `lite_columns` (CPU/latency from workload + pre-drawn
    /// noise), `resource_mean_columns` (disk/paging/network means), then
    /// the offline zero contract, exactly as the materialised columnar
    /// step applies them. Bit-identical to the column slice
    /// [`Simulation::step_columns_partitioned`] would have produced.
    ///
    /// # Panics
    ///
    /// Panics when the lane range exceeds the fleet or an `out` slice's
    /// length differs from `len`.
    pub fn step_tile_columns(
        &self,
        pool_index: usize,
        start: usize,
        len: usize,
        out: StreamedTileOut<'_>,
    ) {
        let range = start..start + len;
        let (model, net_scale) = self.cache.entry(pool_index);
        model.lite_columns(
            LiteColumnsIn {
                rps: &self.columns.rps[range.clone()],
                hw: &self.hw[range.clone()],
                noise_cpu: &self.noise_cpu[range.clone()],
                noise_p95: &self.noise_p95[range.clone()],
                noise_avg: &self.noise_avg[range.clone()],
            },
            LiteColumnsOut {
                cpu: out.cpu,
                latency_avg: out.latency_avg,
                latency_p95: out.latency_p95,
            },
        );
        model.resource_mean_columns(
            &self.columns.rps[range],
            net_scale,
            out.disk_queue,
            out.memory_pages_per_sec,
            out.network_mbps,
        );
        // The kernels wrote every lane (offline lanes computed on rps = 0);
        // restore the offline zero contract in the tile buffers.
        for k in 0..len {
            let i = start + k;
            if self.columns.online[i / 64] >> (i % 64) & 1 == 0 {
                out.cpu[k] = 0.0;
                out.latency_avg[k] = 0.0;
                out.latency_p95[k] = 0.0;
                out.disk_queue[k] = 0.0;
                out.memory_pages_per_sec[k] = 0.0;
                out.network_mbps[k] = 0.0;
            }
        }
    }
}

/// The fleet simulator.
///
/// # Example
///
/// ```
/// use headroom_cluster::catalog::MicroserviceKind;
/// use headroom_cluster::sim::{SimConfig, Simulation};
/// use headroom_cluster::topology::FleetBuilder;
/// use headroom_telemetry::counter::CounterKind;
/// use headroom_telemetry::time::WindowRange;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fleet = FleetBuilder::new(1)
///     .datacenters(2)
///     .deploy_service(MicroserviceKind::B, 10)?
///     .build();
/// let mut sim = Simulation::new(fleet, Default::default(), SimConfig::default());
/// sim.run_windows(60);
/// let pool = sim.fleet().pools()[0].id;
/// let obs = sim.store().pool_paired_observations(
///     pool,
///     CounterKind::RequestsPerSec,
///     CounterKind::CpuPercent,
///     WindowRange::days(1.0),
/// );
/// assert!(!obs.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation {
    fleet: Fleet,
    events: EventScript,
    config: SimConfig,
    store: MetricStore,
    availability: AvailabilityLog,
    rng: StdRng,
    next_window: WindowIndex,
    interventions: HashMap<u64, Vec<(PoolId, usize)>>,
    /// Scheduled response-profile changes (releases, hardware refreshes).
    model_swaps: HashMap<u64, Vec<(PoolId, ServiceModel)>>,
    lb: LoadBalancer,
    /// Pool indices grouped by service, each sorted by datacenter index.
    service_groups: Vec<(MicroserviceKind, Vec<usize>)>,
    snapshot: Vec<SnapshotRow>,
    /// Columnar window buffers (the struct-of-arrays sibling of
    /// `snapshot`), filled by the columnar step and reused every window.
    columns: SnapshotColumns,
    /// Static per-row hardware generation column (parallel to `columns`),
    /// built lazily on the first columnar step.
    hw_col: Vec<HardwareGeneration>,
    pool_slices: Vec<PoolSlice>,
    /// Stateful failure tracking: server id → first window it is repaired.
    failed_until: HashMap<u32, u64>,
    /// Per-pool datacenter routing weight, precomputed at construction
    /// (topology never changes mid-run).
    pool_weight: Vec<f64>,
    /// Reusable per-window scratch, cleared and refilled every step — the
    /// warmed window path performs no heap allocation (asserted by a
    /// counting-allocator test in `crates/bench`).
    pool_demand: Vec<f64>,
    group_demands: Vec<f64>,
    group_lost: Vec<bool>,
    group_weights: Vec<f64>,
    online_flags: Vec<bool>,
    shares: Vec<f64>,
    /// Per-pool pre-drawn lite-noise columns (CPU / p95 / avg draws, in
    /// server order) plus the avg-latency output lane — columnar-step
    /// scratch, reused across pools and windows.
    noise_cpu: Vec<f64>,
    noise_p95: Vec<f64>,
    noise_avg: Vec<f64>,
    lat_avg_col: Vec<f64>,
    /// Fleet-length lite-noise columns for the streamed step (the per-pool
    /// `noise_*` scratch above only outlives one pool; a streamed window
    /// hands the whole fleet's draws to the consumer's tile passes).
    /// Offline lanes carry `0.0`. Reused across windows.
    stream_noise_cpu: Vec<f64>,
    stream_noise_p95: Vec<f64>,
    stream_noise_avg: Vec<f64>,
    /// Deduplicated per-pool kernel parameters for the streamed step,
    /// rebuilt lazily after a model swap lands (the only mid-run mutation
    /// that can move a pool's response curves — topology and `net_scale`
    /// are fixed at construction).
    kernel_cache: KernelCache,
    kernel_cache_dirty: bool,
}

impl Simulation {
    /// Creates a simulation over `fleet` with scripted `events`.
    pub fn new(fleet: Fleet, events: EventScript, config: SimConfig) -> Self {
        let mut store = MetricStore::new();
        for pool in fleet.pools() {
            for server in &pool.servers {
                store.register_server(server.id, pool.id, pool.datacenter);
            }
        }
        let mut by_service: HashMap<MicroserviceKind, Vec<usize>> = HashMap::new();
        for (i, pool) in fleet.pools().iter().enumerate() {
            by_service.entry(pool.service).or_default().push(i);
        }
        let mut service_groups: Vec<(MicroserviceKind, Vec<usize>)> =
            by_service.into_iter().collect();
        service_groups.sort_by_key(|(k, _)| *k);
        for (_, idxs) in &mut service_groups {
            idxs.sort_by_key(|&i| fleet.pools()[i].datacenter);
        }
        let pool_weight: Vec<f64> = fleet
            .pools()
            .iter()
            .map(|p| {
                fleet
                    .datacenters()
                    .iter()
                    .find(|d| d.id == p.datacenter)
                    .map(|d| d.weight)
                    .unwrap_or(1.0)
            })
            .collect();
        Simulation {
            fleet,
            events,
            config,
            store,
            availability: AvailabilityLog::new(),
            rng: StdRng::seed_from_u64(config.seed),
            next_window: WindowIndex(0),
            interventions: HashMap::new(),
            model_swaps: HashMap::new(),
            lb: LoadBalancer::default(),
            service_groups,
            snapshot: Vec::new(),
            columns: SnapshotColumns::new(),
            hw_col: Vec::new(),
            pool_slices: Vec::new(),
            failed_until: HashMap::new(),
            pool_weight,
            pool_demand: Vec::new(),
            group_demands: Vec::new(),
            group_lost: Vec::new(),
            group_weights: Vec::new(),
            online_flags: Vec::new(),
            shares: Vec::new(),
            noise_cpu: Vec::new(),
            noise_p95: Vec::new(),
            noise_avg: Vec::new(),
            lat_avg_col: Vec::new(),
            stream_noise_cpu: Vec::new(),
            stream_noise_p95: Vec::new(),
            stream_noise_avg: Vec::new(),
            kernel_cache: KernelCache::default(),
            kernel_cache_dirty: true,
        }
    }

    /// The configuration in effect (including the snapshot layout switch
    /// layout-generic drivers consult).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fleet being simulated.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The recorded metrics.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The availability log.
    pub fn availability(&self) -> &AvailabilityLog {
        &self.availability
    }

    /// The next window to be simulated.
    pub fn current_window(&self) -> WindowIndex {
        self.next_window
    }

    /// Schedules a pool resize: from `window` on, only `active` servers
    /// serve traffic. This is the paper's server-reduction experiment lever.
    ///
    /// # Errors
    ///
    /// - [`ClusterError::UnknownPool`] for a pool not in the fleet.
    /// - [`ClusterError::InvalidResize`] when `active` is zero or exceeds
    ///   the pool size.
    pub fn schedule_resize(
        &mut self,
        pool: PoolId,
        window: WindowIndex,
        active: usize,
    ) -> Result<(), ClusterError> {
        let p = self.fleet.pool(pool).ok_or(ClusterError::UnknownPool(pool))?;
        if active == 0 || active > p.size() {
            return Err(ClusterError::InvalidResize {
                pool,
                requested: active,
                available: p.size(),
            });
        }
        self.interventions.entry(window.0).or_default().push((pool, active));
        Ok(())
    }

    /// Schedules a response-profile change: from `window` on, `pool`'s
    /// servers respond per `model` — the shape of a software release or
    /// hardware refresh. Demand is untouched; only the workload→resource
    /// curves move, which is exactly what a streaming planner's drift
    /// detector must catch.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownPool`] for a pool not in the fleet.
    pub fn schedule_model_swap(
        &mut self,
        pool: PoolId,
        window: WindowIndex,
        model: ServiceModel,
    ) -> Result<(), ClusterError> {
        if self.fleet.pool(pool).is_none() {
            return Err(ClusterError::UnknownPool(pool));
        }
        self.model_swaps.entry(window.0).or_default().push((pool, model));
        Ok(())
    }

    /// Runs `n` windows.
    pub fn run_windows(&mut self, n: u64) {
        self.run_windows_observed(n, |_| {});
    }

    /// Runs `days` simulated days.
    pub fn run_days(&mut self, days: f64) {
        self.run_windows((days * WINDOWS_PER_DAY as f64).round() as u64);
    }

    /// Runs `n` windows, invoking `observer` after each with the full
    /// per-server snapshot (for streaming aggregation at fleet scale).
    pub fn run_windows_observed<F: FnMut(&WindowSnapshot<'_>)>(&mut self, n: u64, mut observer: F) {
        for _ in 0..n {
            let snap = self.step_snapshot();
            observer(&snap);
        }
    }

    /// Simulates exactly one window and returns its snapshot.
    ///
    /// This is the single-step form of [`Simulation::run_windows_observed`]:
    /// because it returns control between windows, a caller can feed the
    /// snapshot to a streaming planner *and* act on the planner's output
    /// (e.g. [`Simulation::schedule_resize`]) before the next window runs —
    /// the closed control loop that a callback observer cannot express.
    pub fn step_snapshot(&mut self) -> WindowSnapshot<'_> {
        self.step();
        WindowSnapshot { window: WindowIndex(self.next_window.0 - 1), rows: &self.snapshot }
    }

    /// Simulates exactly one window and returns its snapshot with the pool
    /// partition attached — [`Simulation::step_snapshot`] for sharded
    /// observers (e.g. a parallel sweep engine) that want per-pool row
    /// slices without re-grouping the flat row array.
    pub fn step_snapshot_partitioned(&mut self) -> PartitionedSnapshot<'_> {
        self.step();
        PartitionedSnapshot {
            window: WindowIndex(self.next_window.0 - 1),
            rows: &self.snapshot,
            pools: &self.pool_slices,
        }
    }

    /// Simulates exactly one window and returns its snapshot as
    /// per-pool-contiguous columns — the struct-of-arrays sibling of
    /// [`Simulation::step_snapshot_partitioned`], and the hot path at fleet
    /// scale: response-model kernels run element-wise over column slices,
    /// the column buffers are reused window over window (no steady-state
    /// allocation), and sharded observers aggregate each pool's counters
    /// from contiguous memory.
    ///
    /// Values, stored counters, availability log, and RNG stream are
    /// *bit-identical* to the row path under every recording policy
    /// (`repro colsim` gates this); only the in-memory layout differs.
    pub fn step_columns_partitioned(&mut self) -> ColumnarSnapshot<'_> {
        self.step_cols();
        ColumnarSnapshot {
            window: WindowIndex(self.next_window.0 - 1),
            columns: &self.columns,
            pools: &self.pool_slices,
        }
    }

    /// Simulates exactly one window and returns it *streamed*: the
    /// sequential prefix (demand, routing, online flags, ticks, and the
    /// noise draws — everything that shares the row path's RNG stream)
    /// runs here, while the element-wise metric kernels are deferred to
    /// the consumer via [`StreamedKernels::step_tile_columns`], evaluated
    /// tile-at-a-time inside the consumer's own passes where the slice is
    /// still cache-resident. The fleet's metric columns never round-trip
    /// DRAM — the structural win of the fused closed-loop pipeline.
    ///
    /// Only [`RecordingPolicy::SnapshotOnly`] — the fleet-scale policy —
    /// actually defers the kernels. The other policies' windows interleave
    /// sequential store writes (or zero metrics) with evaluation, so they
    /// fall back to the materialised columnar step and hand out
    /// [`StreamedSource::Columns`]; consumers observe identical values
    /// either way, just later bytes. RNG stream, recorded counters, and
    /// computed metrics are bit-identical to both materialised layouts
    /// under every policy (`repro colsim` gates this).
    pub fn step_streamed(&mut self) -> StreamedWindow<'_> {
        match self.config.recording {
            RecordingPolicy::SnapshotOnly => {
                self.step_streamed_prefix();
                // Rebuild after the prefix so a model swap landing this
                // window is already applied to the fleet it reads.
                if self.kernel_cache_dirty {
                    self.kernel_cache.rebuild(self.fleet.pools());
                    self.kernel_cache_dirty = false;
                }
                StreamedWindow {
                    window: WindowIndex(self.next_window.0 - 1),
                    pools: &self.pool_slices,
                    source: StreamedSource::Kernels(StreamedKernels {
                        columns: &self.columns,
                        hw: &self.hw_col,
                        noise_cpu: &self.stream_noise_cpu,
                        noise_p95: &self.stream_noise_p95,
                        noise_avg: &self.stream_noise_avg,
                        cache: &self.kernel_cache,
                    }),
                }
            }
            _ => {
                self.step_cols();
                StreamedWindow {
                    window: WindowIndex(self.next_window.0 - 1),
                    pools: &self.pool_slices,
                    source: StreamedSource::Columns(&self.columns),
                }
            }
        }
    }

    /// Consumes the simulation, returning the fleet, metric store and
    /// availability log.
    pub fn into_parts(self) -> (Fleet, MetricStore, AvailabilityLog) {
        (self.fleet, self.store, self.availability)
    }

    /// Advances the window clock, applies scheduled interventions and model
    /// swaps, and fills the per-pool demand scratch — the phases shared by
    /// both snapshot layouts, byte for byte (one implementation, so the RNG
    /// stream cannot diverge between them).
    fn begin_window(&mut self) -> (WindowIndex, SimTime, f64) {
        let w = self.next_window;
        self.next_window = WindowIndex(w.0 + 1);
        let t = w.midpoint();
        let utc_hour = t.hour_of_day();

        // Apply interventions scheduled for this window.
        if let Some(resizes) = self.interventions.remove(&w.0) {
            for (pool_id, active) in resizes {
                if let Some(pool) = self.fleet.pool_mut(pool_id) {
                    // Validated at scheduling time; ignore failure defensively.
                    let _ = pool.resize_active(active);
                }
            }
        }

        // Apply scheduled response-profile changes (releases / hardware
        // refreshes): the pool's black-box curves move, demand does not.
        if let Some(swaps) = self.model_swaps.remove(&w.0) {
            for (pool_id, model) in swaps {
                if let Some(pool) = self.fleet.pool_mut(pool_id) {
                    pool.model = model;
                    self.kernel_cache_dirty = true;
                }
            }
        }

        // Demand per pool, grouped by service for failover rerouting.
        // Everything here runs on reusable field buffers: a warmed window
        // touches no allocator.
        self.pool_demand.clear();
        self.pool_demand.resize(self.fleet.pools().len(), 0.0);
        for gi in 0..self.service_groups.len() {
            self.group_demands.clear();
            self.group_lost.clear();
            self.group_weights.clear();
            for k in 0..self.service_groups[gi].1.len() {
                let pi = self.service_groups[gi].1[k];
                let pool = &self.fleet.pools()[pi];
                let base = pool.demand.demand(t, &mut self.rng);
                let factor = self.events.demand_factor(pool.datacenter, t);
                self.group_demands.push(base * factor);
                self.group_lost.push(self.events.datacenter_lost(pool.datacenter, t));
                self.group_weights.push(self.pool_weight[pi]);
            }
            redistribute(&mut self.group_demands, &self.group_lost, &self.group_weights);
            for k in 0..self.service_groups[gi].1.len() {
                let pi = self.service_groups[gi].1[k];
                self.pool_demand[pi] = self.group_demands[k];
            }
        }
        (w, t, utc_hour)
    }

    /// One pool's per-window header: identity, local hour, size, loss
    /// status, and network shape.
    fn pool_header(
        &self,
        pi: usize,
        t: SimTime,
        utc_hour: f64,
    ) -> (PoolId, DatacenterId, f64, usize, bool, f64) {
        let pool = &self.fleet.pools()[pi];
        (
            pool.id,
            pool.datacenter,
            pool.local_hour(utc_hour),
            pool.size(),
            self.events.datacenter_lost(pool.datacenter, t),
            pool.net_scale,
        )
    }

    /// Decides online status per server of pool `pi` into `online_flags`.
    /// Failures are tracked statefully: one hash draw per server-window,
    /// with the repair interval carried in `failed_until`. Shared verbatim
    /// by both snapshot layouts.
    fn fill_online_flags(
        &mut self,
        pi: usize,
        pool_size: usize,
        w: WindowIndex,
        local_hour: f64,
        dc_lost: bool,
    ) {
        self.online_flags.clear();
        let pool = &self.fleet.pools()[pi];
        for (idx, server) in pool.servers.iter().enumerate() {
            let maint = pool.maintenance.is_offline(idx, pool_size, w, local_hour);
            let failed = match pool.failures {
                Some(f) => {
                    let key = server.id.0;
                    let down =
                        self.failed_until.get(&key).map(|&until| w.0 < until).unwrap_or(false);
                    if down {
                        true
                    } else if f.fails_at(key as u64, w) {
                        self.failed_until.insert(key, w.0 + f.repair_windows);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            self.online_flags.push(server.is_active() && !maint && !failed && !dc_lost);
        }
    }

    /// Evaluates one online server under [`RecordingPolicy::Full`]: the
    /// complete counter row, recorded into the store, returning the
    /// snapshot metric tuple `(cpu, lat_avg, lat_p95, disk_queue, pages,
    /// mbps)`. Shared by both snapshot layouts (the Full path is the
    /// heavyweight archival path; it is not columnarized).
    fn eval_full(
        &mut self,
        pi: usize,
        server_id: ServerId,
        generation: HardwareGeneration,
        windows_online: u64,
        rps: f64,
        w: WindowIndex,
    ) -> (f64, f64, f64, f64, f64, f64) {
        let m = {
            let pool = &self.fleet.pools()[pi];
            pool.model.window_metrics(
                rps,
                generation,
                w,
                windows_online,
                server_id.0 as u64 % 97,
                pool.net_scale,
                &mut self.rng,
            )
        };
        self.store.record(server_id, CounterKind::CpuPercent, w, m.cpu_pct);
        self.store.record(server_id, CounterKind::RequestsPerSec, w, rps);
        self.store.record(server_id, CounterKind::LatencyAvgMs, w, m.latency_avg_ms);
        self.store.record(server_id, CounterKind::LatencyP95Ms, w, m.latency_p95_ms);
        self.store.record(server_id, CounterKind::DiskReadBytesPerSec, w, m.disk_read_bytes);
        self.store.record(server_id, CounterKind::DiskWriteBytesPerSec, w, m.disk_write_bytes);
        self.store.record(server_id, CounterKind::DiskQueueLength, w, m.disk_queue);
        self.store.record(server_id, CounterKind::MemoryPagesPerSec, w, m.memory_pages_per_sec);
        self.store.record(server_id, CounterKind::NetworkBytesPerSec, w, m.network_bytes);
        self.store.record(server_id, CounterKind::NetworkPacketsPerSec, w, m.network_pkts);
        self.store.record(server_id, CounterKind::ErrorsPerSec, w, m.errors_per_sec);
        self.store.record(server_id, CounterKind::MemoryResidentMb, w, m.memory_resident_mb);
        for (ti, (&t_rps, &t_cpu)) in m.table_rps.iter().zip(&m.table_cpu).enumerate() {
            let tag = WorkloadTag::Workload(ti as u8);
            self.store.record_tagged(server_id, CounterKind::RequestsPerSec, tag, w, t_rps);
            self.store.record_tagged(server_id, CounterKind::CpuPercent, tag, w, t_cpu);
        }
        (
            m.cpu_pct,
            m.latency_avg_ms,
            m.latency_p95_ms,
            m.disk_queue,
            m.memory_pages_per_sec,
            m.network_bytes * 8.0 / 1e6,
        )
    }

    fn step(&mut self) {
        let (w, t, utc_hour) = self.begin_window();
        self.snapshot.clear();
        self.pool_slices.clear();

        // Simulate each pool.
        let track_availability = self.config.track_availability;
        let recording = self.config.recording;
        for pi in 0..self.fleet.pools().len() {
            let slice_start = self.snapshot.len();
            let demand = self.pool_demand[pi];
            let (pool_id, dc, local_hour, pool_size, dc_lost, net_scale) =
                self.pool_header(pi, t, utc_hour);

            self.fill_online_flags(pi, pool_size, w, local_hour, dc_lost);
            let online_count = self.online_flags.iter().filter(|&&o| o).count();
            let lb = self.lb;
            lb.distribute_into(&mut self.shares, demand, online_count, &mut self.rng);

            // Evaluate servers.
            let mut next_share = 0usize;
            for idx in 0..pool_size {
                let online = self.online_flags[idx];
                let (server_id, generation, windows_online) = {
                    let s = &self.fleet.pools()[pi].servers[idx];
                    (s.id, s.generation, s.windows_online)
                };

                if track_availability {
                    self.availability.record(server_id, w, online);
                }

                if !online {
                    if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                        pool.servers[idx].tick_offline();
                    }
                    self.snapshot.push(SnapshotRow {
                        server: server_id,
                        pool: pool_id,
                        datacenter: dc,
                        online: false,
                        rps: 0.0,
                        cpu_pct: 0.0,
                        latency_p95_ms: 0.0,
                        disk_queue: 0.0,
                        memory_pages_per_sec: 0.0,
                        network_mbps: 0.0,
                    });
                    continue;
                }

                let rps = self.shares.get(next_share).copied().unwrap_or(0.0);
                next_share += 1;
                let (cpu, lat_avg, lat_p95, disk_queue, mem_pages, net_mbps) = match recording {
                    RecordingPolicy::Full => {
                        self.eval_full(pi, server_id, generation, windows_online, rps, w)
                    }
                    RecordingPolicy::Workload => {
                        let (cpu, lat_avg, lat_p95, dq, pg, nm) = {
                            let model = &self.fleet.pools()[pi].model;
                            let (cpu, lat_avg, lat_p95) =
                                model.window_metrics_lite(rps, generation, &mut self.rng);
                            // Noise-free resource means: no extra RNG draws,
                            // so the recorded CPU/latency stream is identical
                            // to the pre-multi-resource simulator.
                            (
                                cpu,
                                lat_avg,
                                lat_p95,
                                model.disk_queue_mean(rps),
                                model.paging_mean(rps),
                                model.network_mbps_mean(rps, net_scale),
                            )
                        };
                        self.store.record(server_id, CounterKind::CpuPercent, w, cpu);
                        self.store.record(server_id, CounterKind::RequestsPerSec, w, rps);
                        self.store.record(server_id, CounterKind::LatencyAvgMs, w, lat_avg);
                        self.store.record(server_id, CounterKind::LatencyP95Ms, w, lat_p95);
                        (cpu, lat_avg, lat_p95, dq, pg, nm)
                    }
                    RecordingPolicy::SnapshotOnly => {
                        let model = &self.fleet.pools()[pi].model;
                        let (cpu, lat_avg, lat_p95) =
                            model.window_metrics_lite(rps, generation, &mut self.rng);
                        (
                            cpu,
                            lat_avg,
                            lat_p95,
                            model.disk_queue_mean(rps),
                            model.paging_mean(rps),
                            model.network_mbps_mean(rps, net_scale),
                        )
                    }
                    RecordingPolicy::AvailabilityOnly => (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
                };
                let _ = lat_avg;

                if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                    pool.servers[idx].tick_online();
                }
                self.snapshot.push(SnapshotRow {
                    server: server_id,
                    pool: pool_id,
                    datacenter: dc,
                    online: true,
                    rps,
                    cpu_pct: cpu,
                    latency_p95_ms: lat_p95,
                    disk_queue,
                    memory_pages_per_sec: mem_pages,
                    network_mbps: net_mbps,
                });
            }
            self.pool_slices.push(PoolSlice {
                pool: pool_id,
                start: slice_start,
                len: self.snapshot.len() - slice_start,
            });
        }
    }

    /// Sizes the column buffers and (once) builds the static identity and
    /// hardware columns. Row layout is static for a fleet — every server
    /// appears every window, online or not — so after the first columnar
    /// step this only clears the bitmask.
    fn ensure_columns(&mut self) {
        let n = self.fleet.server_count();
        self.columns.resize(n);
        if self.hw_col.len() != n {
            self.hw_col.clear();
            let mut i = 0usize;
            for pool in self.fleet.pools() {
                for s in &pool.servers {
                    self.columns.server[i] = s.id;
                    self.columns.pool[i] = pool.id;
                    self.columns.datacenter[i] = pool.datacenter;
                    self.hw_col.push(s.generation);
                    i += 1;
                }
            }
        }
    }

    /// Ticks every server of pool `pi` per its online flag — the
    /// per-server age bookkeeping of the lite recording paths, where no
    /// metric reads `windows_online` and the ticks can run up front. The
    /// `Full` path must NOT use this: it reads `windows_online` (the leak
    /// model) *before* ticking, per server, in row-path order.
    fn tick_pool_servers(&mut self, pi: usize, pool_size: usize) {
        if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
            for idx in 0..pool_size {
                if self.online_flags[idx] {
                    pool.servers[idx].tick_online();
                } else {
                    pool.servers[idx].tick_offline();
                }
            }
        }
    }

    /// The columnar window step: identical phases, identical RNG stream,
    /// and bit-identical values to [`Simulation::step`], but metrics are
    /// written straight into per-pool-contiguous column buffers and the
    /// cheap recording paths evaluate the response-model kernels
    /// element-wise over column slices instead of per-server row structs.
    ///
    /// Noise is inherently sequential (one gaussian stream shared with the
    /// row path), so each pool runs a short sequential noise pass first;
    /// everything after it is branch-light columnar arithmetic.
    fn step_cols(&mut self) {
        let (w, t, utc_hour) = self.begin_window();
        self.pool_slices.clear();
        self.ensure_columns();

        let track_availability = self.config.track_availability;
        let recording = self.config.recording;
        let mut base = 0usize;
        for pi in 0..self.fleet.pools().len() {
            let demand = self.pool_demand[pi];
            let (pool_id, _dc, local_hour, pool_size, dc_lost, net_scale) =
                self.pool_header(pi, t, utc_hour);

            self.fill_online_flags(pi, pool_size, w, local_hour, dc_lost);
            let online_count = self.online_flags.iter().filter(|&&o| o).count();
            let lb = self.lb;
            lb.distribute_into(&mut self.shares, demand, online_count, &mut self.rng);

            // Identity phase: availability, online bits, workload column.
            let mut next_share = 0usize;
            for idx in 0..pool_size {
                let online = self.online_flags[idx];
                if track_availability {
                    let server_id = self.fleet.pools()[pi].servers[idx].id;
                    self.availability.record(server_id, w, online);
                }
                self.columns.set_online(base + idx, online);
                self.columns.rps[base + idx] = if online {
                    let r = self.shares.get(next_share).copied().unwrap_or(0.0);
                    next_share += 1;
                    r
                } else {
                    0.0
                };
            }

            match recording {
                RecordingPolicy::Full => {
                    // The archival path stays scalar (its per-server metrics
                    // and tagged series do not columnarize), evaluated in
                    // exactly the row path's order — including the
                    // before-tick `windows_online` read the leak model needs.
                    for idx in 0..pool_size {
                        let online = self.online_flags[idx];
                        let (server_id, generation, windows_online) = {
                            let s = &self.fleet.pools()[pi].servers[idx];
                            (s.id, s.generation, s.windows_online)
                        };
                        let i = base + idx;
                        if !online {
                            if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                                pool.servers[idx].tick_offline();
                            }
                            self.columns.cpu_pct[i] = 0.0;
                            self.columns.latency_p95_ms[i] = 0.0;
                            self.columns.disk_queue[i] = 0.0;
                            self.columns.memory_pages_per_sec[i] = 0.0;
                            self.columns.network_mbps[i] = 0.0;
                            continue;
                        }
                        let rps = self.columns.rps[i];
                        let (cpu, _lat_avg, lat_p95, dq, pg, nm) =
                            self.eval_full(pi, server_id, generation, windows_online, rps, w);
                        if let Some(pool) = self.fleet.pools_mut().get_mut(pi) {
                            pool.servers[idx].tick_online();
                        }
                        self.columns.cpu_pct[i] = cpu;
                        self.columns.latency_p95_ms[i] = lat_p95;
                        self.columns.disk_queue[i] = dq;
                        self.columns.memory_pages_per_sec[i] = pg;
                        self.columns.network_mbps[i] = nm;
                    }
                }
                RecordingPolicy::Workload | RecordingPolicy::SnapshotOnly => {
                    // Lite metrics never read `windows_online`, so server
                    // ticks can run up front.
                    self.tick_pool_servers(pi, pool_size);
                    // Sequential noise pass: the exact gaussian draws (and
                    // order) of the row path's per-server lite calls.
                    self.noise_cpu.clear();
                    self.noise_cpu.resize(pool_size, 0.0);
                    self.noise_p95.clear();
                    self.noise_p95.resize(pool_size, 0.0);
                    self.noise_avg.clear();
                    self.noise_avg.resize(pool_size, 0.0);
                    for idx in 0..pool_size {
                        if self.online_flags[idx] {
                            let n = LiteNoise::draw(&mut self.rng);
                            self.noise_cpu[idx] = n.cpu;
                            self.noise_p95[idx] = n.p95;
                            self.noise_avg[idx] = n.avg;
                        }
                    }
                    // Columnar kernels over the pool's slice.
                    self.lat_avg_col.clear();
                    self.lat_avg_col.resize(pool_size, 0.0);
                    let range = base..base + pool_size;
                    let model = &self.fleet.pools()[pi].model;
                    model.lite_columns(
                        LiteColumnsIn {
                            rps: &self.columns.rps[range.clone()],
                            hw: &self.hw_col[range.clone()],
                            noise_cpu: &self.noise_cpu,
                            noise_p95: &self.noise_p95,
                            noise_avg: &self.noise_avg,
                        },
                        LiteColumnsOut {
                            cpu: &mut self.columns.cpu_pct[range.clone()],
                            latency_avg: &mut self.lat_avg_col,
                            latency_p95: &mut self.columns.latency_p95_ms[range.clone()],
                        },
                    );
                    model.resource_mean_columns(
                        &self.columns.rps[range.clone()],
                        net_scale,
                        &mut self.columns.disk_queue[range.clone()],
                        &mut self.columns.memory_pages_per_sec[range.clone()],
                        &mut self.columns.network_mbps[range],
                    );
                    // The kernels wrote every lane (offline lanes computed
                    // on rps = 0); restore the offline zero contract.
                    self.columns.zero_offline(base, pool_size);

                    if recording == RecordingPolicy::Workload {
                        for idx in 0..pool_size {
                            if !self.online_flags[idx] {
                                continue;
                            }
                            let i = base + idx;
                            let server_id = self.columns.server[i];
                            self.store.record(
                                server_id,
                                CounterKind::CpuPercent,
                                w,
                                self.columns.cpu_pct[i],
                            );
                            self.store.record(
                                server_id,
                                CounterKind::RequestsPerSec,
                                w,
                                self.columns.rps[i],
                            );
                            self.store.record(
                                server_id,
                                CounterKind::LatencyAvgMs,
                                w,
                                self.lat_avg_col[idx],
                            );
                            self.store.record(
                                server_id,
                                CounterKind::LatencyP95Ms,
                                w,
                                self.columns.latency_p95_ms[i],
                            );
                        }
                    }
                }
                RecordingPolicy::AvailabilityOnly => {
                    self.tick_pool_servers(pi, pool_size);
                    for i in base..base + pool_size {
                        self.columns.cpu_pct[i] = 0.0;
                        self.columns.latency_p95_ms[i] = 0.0;
                        self.columns.disk_queue[i] = 0.0;
                        self.columns.memory_pages_per_sec[i] = 0.0;
                        self.columns.network_mbps[i] = 0.0;
                    }
                }
            }

            self.pool_slices.push(PoolSlice { pool: pool_id, start: base, len: pool_size });
            base += pool_size;
        }
    }

    /// The sequential prefix of a streamed `SnapshotOnly` window: exactly
    /// [`Simulation::step_cols`]'s phases *up to* the metric kernels —
    /// demand, routing, online flags, availability, RPS fill, server
    /// ticks, and the per-server noise draws (the complete RNG
    /// consumption of a window, in the row path's order, so the stream
    /// stays bit-identical) — writing the noise into fleet-length columns
    /// instead of per-pool scratch. The metric columns are *not* touched;
    /// the consumer evaluates the kernels per tile from the RPS, noise,
    /// hardware, and online-mask columns this leaves behind.
    fn step_streamed_prefix(&mut self) {
        let (w, t, utc_hour) = self.begin_window();
        self.pool_slices.clear();
        self.ensure_columns();
        let n = self.fleet.server_count();
        // No clear before resize: every lane is written in the loop below.
        self.stream_noise_cpu.resize(n, 0.0);
        self.stream_noise_p95.resize(n, 0.0);
        self.stream_noise_avg.resize(n, 0.0);

        let track_availability = self.config.track_availability;
        let mut base = 0usize;
        for pi in 0..self.fleet.pools().len() {
            let demand = self.pool_demand[pi];
            let (pool_id, _dc, local_hour, pool_size, dc_lost, _net_scale) =
                self.pool_header(pi, t, utc_hour);

            self.fill_online_flags(pi, pool_size, w, local_hour, dc_lost);
            let online_count = self.online_flags.iter().filter(|&&o| o).count();
            let lb = self.lb;
            lb.distribute_into(&mut self.shares, demand, online_count, &mut self.rng);

            // Identity + noise in one walk: the noise draws still happen
            // in server order after the pool's routing draw, so the
            // gaussian stream matches the materialised paths exactly.
            let mut next_share = 0usize;
            for idx in 0..pool_size {
                let online = self.online_flags[idx];
                if track_availability {
                    let server_id = self.fleet.pools()[pi].servers[idx].id;
                    self.availability.record(server_id, w, online);
                }
                let i = base + idx;
                self.columns.set_online(i, online);
                if online {
                    self.columns.rps[i] = self.shares.get(next_share).copied().unwrap_or(0.0);
                    next_share += 1;
                    let noise = LiteNoise::draw(&mut self.rng);
                    self.stream_noise_cpu[i] = noise.cpu;
                    self.stream_noise_p95[i] = noise.p95;
                    self.stream_noise_avg[i] = noise.avg;
                } else {
                    self.columns.rps[i] = 0.0;
                    self.stream_noise_cpu[i] = 0.0;
                    self.stream_noise_p95[i] = 0.0;
                    self.stream_noise_avg[i] = 0.0;
                }
            }
            self.tick_pool_servers(pi, pool_size);

            self.pool_slices.push(PoolSlice { pool: pool_id, start: base, len: pool_size });
            base += pool_size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FleetBuilder;
    use headroom_telemetry::time::WindowRange;
    use headroom_workload::events;

    fn small_fleet(seed: u64) -> Fleet {
        let spec = MicroserviceKind::B
            .spec()
            .with_practice(crate::maintenance::AvailabilityPractice::WellManaged);
        FleetBuilder::new(seed)
            .datacenters(3)
            .without_failures()
            .without_incidents()
            .deploy_with_spec(&spec, 10, spec.peak_rps_per_server)
            .unwrap()
            .build()
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let mut sim =
                Simulation::new(small_fleet(3), EventScript::empty(), SimConfig::default());
            sim.run_windows(50);
            sim
        };
        let a = mk();
        let b = mk();
        let pool = a.fleet().pools()[0].id;
        let range = WindowRange::new(WindowIndex(0), WindowIndex(50));
        assert_eq!(
            a.store().pool_mean_series(pool, CounterKind::CpuPercent, range),
            b.store().pool_mean_series(pool, CounterKind::CpuPercent, range)
        );
    }

    #[test]
    fn cpu_tracks_workload_linearly() {
        let mut sim = Simulation::new(small_fleet(1), EventScript::empty(), SimConfig::default());
        sim.run_days(1.0);
        let pool = sim.fleet().pools()[0].id;
        let obs = sim.store().pool_paired_observations(
            pool,
            CounterKind::RequestsPerSec,
            CounterKind::CpuPercent,
            WindowRange::days(1.0),
        );
        assert!(obs.len() > 700);
        let fit = headroom_stats::LinearFit::fit_paired(&obs).unwrap();
        assert!(fit.r_squared > 0.95, "r2 {}", fit.r_squared);
        assert!((fit.slope - 0.028).abs() < 0.004, "slope {}", fit.slope);
    }

    #[test]
    fn resize_increases_per_server_load() {
        let mut sim = Simulation::new(small_fleet(2), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        sim.schedule_resize(pool, WindowIndex(720), 7).unwrap();
        sim.run_days(2.0);
        let store = sim.store();
        let day1: Vec<f64> = store
            .pool_mean_series(pool, CounterKind::RequestsPerSec, WindowRange::day(0))
            .iter()
            .map(|(_, v)| *v)
            .collect();
        let day2: Vec<f64> = store
            .pool_mean_series(pool, CounterKind::RequestsPerSec, WindowRange::day(1))
            .iter()
            .map(|(_, v)| *v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&day2) / mean(&day1);
        assert!((ratio - 10.0 / 7.0).abs() < 0.12, "per-server load ratio {ratio}");
        // Active-server count drops in the store too.
        assert_eq!(store.pool_active_servers(pool, WindowIndex(800)), 7);
    }

    #[test]
    fn resize_validation() {
        let mut sim = Simulation::new(small_fleet(2), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        assert!(matches!(
            sim.schedule_resize(PoolId(999), WindowIndex(0), 5),
            Err(ClusterError::UnknownPool(_))
        ));
        assert!(matches!(
            sim.schedule_resize(pool, WindowIndex(0), 0),
            Err(ClusterError::InvalidResize { .. })
        ));
        assert!(matches!(
            sim.schedule_resize(pool, WindowIndex(0), 11),
            Err(ClusterError::InvalidResize { .. })
        ));
    }

    #[test]
    fn dc_loss_reroutes_demand() {
        let fleet = small_fleet(4);
        let dc0 = fleet.datacenters()[0].id;
        let survivor_pool = fleet.pools()[1].id;
        let lost_pool = fleet.pools()[0].id;
        // Event in the middle of day 0, lasting 2 hours.
        let script =
            events::two_hour_dc_loss(dc0, headroom_telemetry::time::SimTime::from_hours(12.0));
        let mut sim = Simulation::new(fleet, script, SimConfig::default());
        sim.run_days(1.0);
        let store = sim.store();
        // During the event the lost pool has no active servers.
        let event_window = WindowIndex(13 * 30); // 13:00
        assert_eq!(store.pool_active_servers(lost_pool, event_window), 0);
        // The survivor sees elevated RPS/server vs the same hour next...
        // compare event hour to one hour before event start.
        let before = store
            .pool_window_mean(survivor_pool, CounterKind::RequestsPerSec, WindowIndex(11 * 30))
            .unwrap();
        let during = store
            .pool_window_mean(survivor_pool, CounterKind::RequestsPerSec, event_window)
            .unwrap();
        assert!(during > before * 1.2, "before {before}, during {during}");
    }

    #[test]
    fn availability_tracks_maintenance_practice() {
        let fleet = FleetBuilder::new(9)
            .datacenters(1)
            .without_failures()
            .deploy_service(MicroserviceKind::C, 40) // Heavy ⇒ ~90.5%
            .unwrap()
            .build();
        let mut sim = Simulation::new(
            fleet,
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::AvailabilityOnly, ..SimConfig::default() },
        );
        sim.run_days(7.0);
        let mean = sim.availability().fleet_mean_availability().unwrap();
        assert!((mean - 0.905).abs() < 0.04, "availability {mean}");
        // AvailabilityOnly stores no counters.
        assert_eq!(sim.store().sample_count(), 0);
    }

    #[test]
    fn observer_sees_every_server() {
        let fleet = small_fleet(5);
        let total_servers = fleet.server_count();
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let mut rows_seen = 0usize;
        let mut windows = Vec::new();
        sim.run_windows_observed(3, |snap| {
            rows_seen += snap.rows.len();
            windows.push(snap.window);
        });
        assert_eq!(rows_seen, 3 * total_servers);
        assert_eq!(windows, vec![WindowIndex(0), WindowIndex(1), WindowIndex(2)]);
    }

    #[test]
    fn full_recording_includes_fig2_counters() {
        let mut sim = Simulation::new(
            small_fleet(6),
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::Full, ..SimConfig::default() },
        );
        sim.run_windows(10);
        let server = sim.fleet().pools()[0].servers[0].id;
        for counter in CounterKind::FIG2_RESOURCES {
            assert!(sim.store().series(server, counter).is_some(), "missing counter {counter}");
        }
    }

    #[test]
    fn partitioned_snapshot_covers_rows_pool_by_pool() {
        let fleet = small_fleet(8);
        let pool_count = fleet.pools().len();
        let total_servers = fleet.server_count();
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let snap = sim.step_snapshot_partitioned();
        assert_eq!(snap.pools.len(), pool_count);
        assert_eq!(snap.rows.len(), total_servers);
        let mut cursor = 0usize;
        for slice in snap.pools {
            assert_eq!(slice.start, cursor, "slices tile the row array in order");
            let rows = snap.pool_rows(slice);
            assert!(!rows.is_empty());
            assert!(rows.iter().all(|r| r.pool == slice.pool), "slice rows belong to its pool");
            cursor += slice.len;
        }
        assert_eq!(cursor, snap.rows.len(), "every row is covered exactly once");
        // The flat view is the same window.
        assert_eq!(snap.as_snapshot().window, snap.window);
        assert_eq!(snap.as_snapshot().rows.len(), total_servers);
    }

    #[test]
    fn snapshot_rows_carry_resource_counters() {
        use headroom_workload::resource_profile::ResourceProfile;
        let mut fleet = small_fleet(13);
        // Make pool 0 disk-coupled so its counters respond to workload.
        fleet.pools_mut()[0].model =
            fleet.pools()[0].model.clone().with_resource_profile(&ResourceProfile::disk_heavy());
        let mut sim = Simulation::new(fleet, EventScript::empty(), SimConfig::default());
        let snap = sim.step_snapshot();
        let online: Vec<&SnapshotRow> = snap.rows.iter().filter(|r| r.online).collect();
        assert!(!online.is_empty());
        for row in &online {
            assert!(row.network_mbps > 0.0, "network tracks workload: {row:?}");
            assert!(row.memory_pages_per_sec > 0.0);
            assert!(row.disk_queue > 0.0);
        }
        // Disk-coupled pool: queue depth grows with per-server RPS.
        let p0: Vec<&&SnapshotRow> =
            online.iter().filter(|r| r.pool == snap.rows[0].pool).collect();
        let expected = 1.0 + 0.02 * p0[0].rps;
        assert!(
            (p0[0].disk_queue - expected).abs() < 1e-9,
            "disk queue follows the profile: {} vs {expected}",
            p0[0].disk_queue
        );
    }

    #[test]
    fn availability_only_snapshot_resources_are_zero() {
        let mut sim = Simulation::new(
            small_fleet(14),
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::AvailabilityOnly, ..SimConfig::default() },
        );
        let snap = sim.step_snapshot();
        assert!(snap.rows.iter().all(|r| r.disk_queue == 0.0
            && r.memory_pages_per_sec == 0.0
            && r.network_mbps == 0.0));
    }

    #[test]
    fn partitioned_and_flat_stepping_agree() {
        let mk = |partitioned: bool| {
            let mut sim =
                Simulation::new(small_fleet(11), EventScript::empty(), SimConfig::default());
            let mut rows = Vec::new();
            for _ in 0..30 {
                if partitioned {
                    rows.extend(sim.step_snapshot_partitioned().rows.to_vec());
                } else {
                    rows.extend(sim.step_snapshot().rows.to_vec());
                }
            }
            rows
        };
        assert_eq!(mk(true), mk(false), "partitioning changes nothing but the view");
    }

    /// Drives one simulation stepping rows and a twin stepping columns and
    /// asserts byte-identical rows, stores, and availability per window.
    fn assert_columnar_identity(recording: RecordingPolicy, windows: u64) {
        let fleet = || {
            let spec = MicroserviceKind::B
                .spec()
                .with_practice(crate::maintenance::AvailabilityPractice::Moderate);
            FleetBuilder::new(21)
                .datacenters(2)
                .deploy_with_spec(&spec, 8, spec.peak_rps_per_server)
                .unwrap()
                .deploy_service(MicroserviceKind::D, 5)
                .unwrap()
                .build()
        };
        let config = SimConfig { seed: 9, recording, ..SimConfig::default() };
        let mut rows_sim = Simulation::new(fleet(), EventScript::empty(), config);
        let mut cols_sim = Simulation::new(fleet(), EventScript::empty(), config);
        let mut cols_rows = Vec::new();
        for i in 0..windows {
            let row_snap = rows_sim.step_snapshot_partitioned();
            let expect_rows = row_snap.rows.to_vec();
            let expect_slices = row_snap.pools.to_vec();
            let col_snap = cols_sim.step_columns_partitioned();
            assert_eq!(col_snap.pools, &expect_slices[..], "partition diverged at window {i}");
            col_snap.columns.to_rows(&mut cols_rows);
            assert_eq!(cols_rows, expect_rows, "{recording:?} rows diverged at window {i}");
        }
        // Recorded state converges too: counters and availability.
        assert_eq!(rows_sim.store().sample_count(), cols_sim.store().sample_count());
        let pool = rows_sim.fleet().pools()[0].id;
        let range = WindowRange::new(WindowIndex(0), WindowIndex(windows));
        for counter in [CounterKind::CpuPercent, CounterKind::LatencyAvgMs] {
            assert_eq!(
                rows_sim.store().pool_mean_series(pool, counter, range),
                cols_sim.store().pool_mean_series(pool, counter, range),
                "{recording:?} stored {counter} series diverged"
            );
        }
        assert_eq!(
            rows_sim.availability().fleet_mean_availability(),
            cols_sim.availability().fleet_mean_availability()
        );
    }

    #[test]
    fn columnar_step_is_bit_identical_workload() {
        assert_columnar_identity(RecordingPolicy::Workload, 40);
    }

    #[test]
    fn columnar_step_is_bit_identical_full() {
        assert_columnar_identity(RecordingPolicy::Full, 12);
    }

    #[test]
    fn columnar_step_is_bit_identical_snapshot_only() {
        assert_columnar_identity(RecordingPolicy::SnapshotOnly, 40);
    }

    #[test]
    fn columnar_step_is_bit_identical_availability_only() {
        assert_columnar_identity(RecordingPolicy::AvailabilityOnly, 40);
    }

    #[test]
    fn layout_switch_defaults_to_streamed() {
        assert_eq!(SimConfig::default().layout, SnapshotLayout::Streamed);
        let sim = Simulation::new(small_fleet(1), EventScript::empty(), SimConfig::default());
        assert_eq!(sim.config().layout, SnapshotLayout::Streamed);
    }

    /// Drives a streamed twin against a materialised-columns twin: the
    /// streamed prefix + per-pool `step_tile_columns` must reproduce the
    /// materialised column values, partition, RNG stream, and availability
    /// log bit for bit.
    #[test]
    fn streamed_step_matches_materialized_columns_snapshot_only() {
        let fleet = || {
            let spec = MicroserviceKind::B
                .spec()
                .with_practice(crate::maintenance::AvailabilityPractice::Moderate);
            FleetBuilder::new(21)
                .datacenters(2)
                .deploy_with_spec(&spec, 8, spec.peak_rps_per_server)
                .unwrap()
                .deploy_service(MicroserviceKind::D, 5)
                .unwrap()
                .build()
        };
        let config =
            SimConfig { seed: 9, recording: RecordingPolicy::SnapshotOnly, ..SimConfig::default() };
        let mut cols_sim = Simulation::new(fleet(), EventScript::empty(), config);
        let mut streamed_sim = Simulation::new(fleet(), EventScript::empty(), config);
        // A mid-run release: the streamed path's kernel cache must pick up
        // the swapped model the same window the materialised path does.
        let release = MicroserviceKind::B.spec().model.with_cpu_per_rps_scaled(1.3);
        let target = cols_sim.fleet().pools()[0].id;
        cols_sim.schedule_model_swap(target, WindowIndex(20), release.clone()).unwrap();
        streamed_sim.schedule_model_swap(target, WindowIndex(20), release).unwrap();
        let (mut cpu, mut lat_avg, mut lat_p95) = (Vec::new(), Vec::new(), Vec::new());
        let (mut dq, mut pg, mut nm) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..40u64 {
            let col_snap = cols_sim.step_columns_partitioned();
            let expect_slices = col_snap.pools.to_vec();
            let expect_cols = col_snap.columns.clone();
            let win = streamed_sim.step_streamed();
            assert_eq!(win.pools, &expect_slices[..], "partition diverged at window {i}");
            let StreamedSource::Kernels(kernels) = win.source else {
                panic!("SnapshotOnly must stream kernels");
            };
            for (pi, slice) in win.pools.iter().enumerate() {
                let (start, len) = (slice.start, slice.len);
                assert_eq!(
                    &kernels.rps()[start..start + len],
                    &expect_cols.rps()[start..start + len],
                    "rps diverged at window {i} pool {pi}"
                );
                assert_eq!(
                    kernels.online_count(start, len),
                    expect_cols.online_count(start, len),
                    "online mask diverged at window {i} pool {pi}"
                );
                for buf in [&mut cpu, &mut lat_avg, &mut lat_p95, &mut dq, &mut pg, &mut nm] {
                    buf.clear();
                    buf.resize(len, f64::NAN);
                }
                kernels.step_tile_columns(
                    pi,
                    start,
                    len,
                    StreamedTileOut {
                        cpu: &mut cpu,
                        latency_avg: &mut lat_avg,
                        latency_p95: &mut lat_p95,
                        disk_queue: &mut dq,
                        memory_pages_per_sec: &mut pg,
                        network_mbps: &mut nm,
                    },
                );
                assert_eq!(cpu, &expect_cols.cpu_pct()[start..start + len], "cpu w{i} p{pi}");
                assert_eq!(
                    lat_p95,
                    &expect_cols.latency_p95_ms()[start..start + len],
                    "p95 w{i} p{pi}"
                );
                assert_eq!(dq, &expect_cols.disk_queue()[start..start + len], "disk w{i} p{pi}");
                assert_eq!(
                    pg,
                    &expect_cols.memory_pages_per_sec()[start..start + len],
                    "pages w{i} p{pi}"
                );
                assert_eq!(nm, &expect_cols.network_mbps()[start..start + len], "net w{i} p{pi}");
            }
        }
        // The RNG streams stayed in lockstep: further materialised windows
        // on both twins still agree.
        let mut back = Vec::new();
        let expect = cols_sim.step_columns_partitioned().columns.clone();
        streamed_sim.step_columns_partitioned().columns.to_rows(&mut back);
        assert_eq!(SnapshotColumns::from_rows(&back), expect, "streams diverged after streaming");
        assert_eq!(
            cols_sim.availability().fleet_mean_availability(),
            streamed_sim.availability().fleet_mean_availability()
        );
    }

    /// The non-streaming recording policies fall back to materialised
    /// columns under `step_streamed`, with identical values and stores.
    /// The kernel cache must collapse a fleet deployed from a handful of
    /// specs to that many entries, index every pool, and pick up a model
    /// mutation on rebuild.
    #[test]
    fn kernel_cache_dedups_by_exact_parameters() {
        let mut fleet = FleetBuilder::new(3)
            .datacenters(3)
            .deploy_service(MicroserviceKind::B, 6)
            .unwrap()
            .deploy_service(MicroserviceKind::D, 6)
            .unwrap()
            .build();
        let pools = fleet.pools().len();
        let mut cache = KernelCache::build(fleet.pools());
        assert_eq!(cache.pools(), pools);
        // Two service specs: the per-datacenter `net_scale` variation
        // lives in the dense scale column, not the deduplicated models.
        assert_eq!(cache.distinct(), 2, "one model per deployed spec");
        // A release on one pool splits its entry off on rebuild.
        fleet.pools_mut()[0].model = MicroserviceKind::B.spec().model.with_cpu_per_rps_scaled(1.5);
        cache.rebuild(fleet.pools());
        assert_eq!(cache.pools(), pools);
        assert_eq!(cache.distinct(), 3, "swapped model gets its own entry");
    }

    #[test]
    fn streamed_step_falls_back_for_recording_policies() {
        for recording in
            [RecordingPolicy::Workload, RecordingPolicy::Full, RecordingPolicy::AvailabilityOnly]
        {
            let config = SimConfig { seed: 5, recording, ..SimConfig::default() };
            let mut cols_sim = Simulation::new(small_fleet(3), EventScript::empty(), config);
            let mut streamed_sim = Simulation::new(small_fleet(3), EventScript::empty(), config);
            for i in 0..12u64 {
                let col_snap = cols_sim.step_columns_partitioned();
                let expect_cols = col_snap.columns.clone();
                let win = streamed_sim.step_streamed();
                let StreamedSource::Columns(cols) = win.source else {
                    panic!("{recording:?} must fall back to materialised columns");
                };
                assert_eq!(*cols, expect_cols, "{recording:?} columns diverged at window {i}");
            }
            assert_eq!(
                cols_sim.store().sample_count(),
                streamed_sim.store().sample_count(),
                "{recording:?} stores diverged"
            );
        }
    }

    #[test]
    fn interleaved_layouts_share_one_stream() {
        // Alternating row and columnar steps on one simulation advances one
        // underlying stream: a pure-row twin sees the same rows at the same
        // windows, whichever layout produced them.
        let mut mixed = Simulation::new(small_fleet(6), EventScript::empty(), SimConfig::default());
        let mut pure = Simulation::new(small_fleet(6), EventScript::empty(), SimConfig::default());
        let mut buf = Vec::new();
        for i in 0..20u64 {
            let expect = pure.step_snapshot().rows.to_vec();
            let got = if i % 2 == 0 {
                mixed.step_columns_partitioned().columns.to_rows(&mut buf);
                buf.clone()
            } else {
                mixed.step_snapshot().rows.to_vec()
            };
            assert_eq!(got, expect, "window {i}");
        }
    }

    #[test]
    fn model_swap_changes_response_profile_at_window() {
        let mut sim = Simulation::new(small_fleet(12), EventScript::empty(), SimConfig::default());
        let pool = sim.fleet().pools()[0].id;
        // A release that makes every request twice as dear, mid-run.
        let release = sim.fleet().pools()[0].model.clone().with_cpu_per_rps_scaled(2.0);
        sim.schedule_model_swap(pool, WindowIndex(360), release).unwrap();
        sim.run_days(1.0);
        let store = sim.store();
        let fit_over = |lo: u64, hi: u64| {
            let obs = store.pool_paired_observations(
                pool,
                CounterKind::RequestsPerSec,
                CounterKind::CpuPercent,
                WindowRange::new(WindowIndex(lo), WindowIndex(hi)),
            );
            headroom_stats::LinearFit::fit_paired(&obs).unwrap().slope
        };
        let before = fit_over(0, 360);
        let after = fit_over(360, 720);
        assert!(
            (after / before - 2.0).abs() < 0.25,
            "cpu-per-rps slope doubled: before {before:.4}, after {after:.4}"
        );
    }

    #[test]
    fn model_swap_validates_pool() {
        let mut sim = Simulation::new(small_fleet(12), EventScript::empty(), SimConfig::default());
        let model = sim.fleet().pools()[0].model.clone();
        assert!(matches!(
            sim.schedule_model_swap(PoolId(999), WindowIndex(0), model),
            Err(ClusterError::UnknownPool(_))
        ));
    }

    #[test]
    fn table_service_records_tagged_series() {
        let fleet = FleetBuilder::new(7)
            .datacenters(1)
            .without_failures()
            .without_incidents()
            .deploy_service(MicroserviceKind::A, 5)
            .unwrap()
            .build();
        let mut sim = Simulation::new(
            fleet,
            EventScript::empty(),
            SimConfig { recording: RecordingPolicy::Full, ..SimConfig::default() },
        );
        sim.run_windows(5);
        let server = sim.fleet().pools()[0].servers[0].id;
        assert!(sim
            .store()
            .series_tagged(server, CounterKind::RequestsPerSec, WorkloadTag::Workload(0))
            .is_some());
        assert!(sim
            .store()
            .series_tagged(server, CounterKind::CpuPercent, WorkloadTag::Workload(1))
            .is_some());
    }
}
