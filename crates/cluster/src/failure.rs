//! Unplanned server failures.
//!
//! Individual servers fail at random and take a while to repair. The paper's
//! availability analysis attributes most unavailability to *planned*
//! maintenance, so the default failure rate is low — but it exists, because
//! pool sizing must tolerate it (that is part of what headroom is for).

use headroom_telemetry::time::WindowIndex;

use crate::maintenance::hash2;

/// A memoryless failure process with deterministic, hash-derived draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean windows between failures per server (e.g. `43_200` ≈ 60 days).
    pub mtbf_windows: f64,
    /// Windows a failed server stays down (e.g. `90` = 3 hours).
    pub repair_windows: u64,
    /// Seed decorrelating failure draws from everything else.
    pub seed: u64,
}

impl FailureModel {
    /// A representative default: 60-day MTBF, 3-hour repair.
    pub fn typical(seed: u64) -> Self {
        FailureModel { mtbf_windows: 43_200.0, repair_windows: 90, seed }
    }

    /// Whether a failure *event* starts for `server_key` at `window`.
    pub fn fails_at(&self, server_key: u64, window: WindowIndex) -> bool {
        if self.mtbf_windows <= 0.0 {
            return false;
        }
        let p = 1.0 / self.mtbf_windows;
        let h = hash2(self.seed ^ server_key.wrapping_mul(0xA24B_AED4_963E_E407), window.0);
        (h as f64 / u64::MAX as f64) < p
    }

    /// Whether the server is down at `window` (a failure event occurred
    /// within the preceding repair interval).
    pub fn is_failed(&self, server_key: u64, window: WindowIndex) -> bool {
        let lookback = self.repair_windows.min(window.0 + 1);
        (0..lookback).any(|back| self.fails_at(server_key, WindowIndex(window.0 - back)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rate_matches_mtbf() {
        let model = FailureModel { mtbf_windows: 100.0, repair_windows: 1, seed: 4 };
        let mut events = 0usize;
        let trials = 200_000;
        for w in 0..trials {
            if model.fails_at(1, WindowIndex(w as u64)) {
                events += 1;
            }
        }
        let rate = events as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate {rate}");
    }

    #[test]
    fn repair_extends_downtime() {
        let model = FailureModel { mtbf_windows: 50.0, repair_windows: 10, seed: 9 };
        // Find a failure event and check persistence.
        let event = (0..10_000u64)
            .find(|&w| model.fails_at(3, WindowIndex(w)))
            .expect("an event must occur");
        for off in 0..10 {
            assert!(model.is_failed(3, WindowIndex(event + off)));
        }
    }

    #[test]
    fn different_servers_fail_independently() {
        let model = FailureModel { mtbf_windows: 100.0, repair_windows: 1, seed: 7 };
        let a: Vec<u64> = (0..50_000).filter(|&w| model.fails_at(1, WindowIndex(w))).collect();
        let b: Vec<u64> = (0..50_000).filter(|&w| model.fails_at(2, WindowIndex(w))).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_mtbf_never_fails() {
        let model = FailureModel { mtbf_windows: 0.0, repair_windows: 10, seed: 0 };
        assert!(!model.is_failed(1, WindowIndex(100)));
    }

    #[test]
    fn early_windows_do_not_underflow() {
        let model = FailureModel { mtbf_windows: 2.0, repair_windows: 90, seed: 0 };
        // Must not panic on window < repair_windows.
        let _ = model.is_failed(1, WindowIndex(0));
        let _ = model.is_failed(1, WindowIndex(5));
    }

    #[test]
    fn typical_is_rare() {
        let model = FailureModel::typical(1);
        let down = (0..720u64).filter(|&w| model.is_failed(42, WindowIndex(w))).count();
        assert!(down < 200, "one server-day should rarely include failures: {down}");
    }
}
