//! Deterministic fleet simulator for the `headroom` capacity planner.
//!
//! The ICDCS'18 paper evaluates its methodology on a production service of
//! 100K+ servers across 9 datacenters. This crate is the substitute
//! substrate: a seeded, window-stepped simulation of that fleet which emits
//! the identical telemetry schema (120-second counter windows, request logs,
//! availability) through [`headroom_telemetry`].
//!
//! The simulator is deliberately a *black box* to the planner: the planner
//! only ever sees the counters, exactly as the paper's planner only saw
//! production traces.
//!
//! Modules:
//!
//! - [`hardware`] — server hardware generations (the Fig. 3 bimodality);
//! - [`service_model`] — per-micro-service black-box response models
//!   (CPU linear in RPS, latency quadratic-with-knee, paging-dominated IO);
//! - [`catalog`] — the seven micro-services of Table I with tuned models;
//! - [`server`], [`pool`] — servers, states, pools, and load balancing;
//! - [`topology`] — datacenters and fleet assembly;
//! - [`routing`] — geo demand routing with failover;
//! - [`maintenance`] — planned-maintenance practices (the availability
//!   populations of Figs. 14–15);
//! - [`failure`] — unplanned server failures;
//! - [`sim`] — the window-stepped engine;
//! - [`columns`] — struct-of-arrays snapshot buffers (the columnar hot
//!   path of the simulator→ingestion pipeline);
//! - [`scenario`] — canned fleets for experiments and examples;
//! - [`regression_lab`] — the twin-pool A/B harness of methodology step 4.
//!
//! # Example
//!
//! ```
//! use headroom_cluster::scenario::FleetScenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = FleetScenario::small(7).run_days(0.25)?;
//! assert!(!outcome.pools().is_empty());
//! assert!(outcome.store().sample_count() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod columns;
pub mod error;
pub mod failure;
pub mod hardware;
pub mod maintenance;
pub mod pool;
pub mod regression_lab;
pub mod routing;
pub mod scenario;
pub mod server;
pub mod service_model;
pub mod sim;
pub mod topology;

pub use catalog::MicroserviceKind;
pub use columns::{ColumnarSnapshot, SnapshotColumns};
pub use error::ClusterError;
pub use hardware::HardwareGeneration;
pub use scenario::FleetScenario;
pub use service_model::ServiceModel;
pub use sim::Simulation;
