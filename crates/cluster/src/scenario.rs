//! Canned fleet scenarios for experiments, examples and tests.

use headroom_telemetry::availability::AvailabilityLog;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::store::MetricStore;
use headroom_telemetry::time::{WindowIndex, WindowRange};
use headroom_workload::events::EventScript;
use headroom_workload::scenarios::{ModelSwapSpec, Scenario};

use crate::catalog::MicroserviceKind;
use crate::error::ClusterError;
use crate::service_model::ServiceModel;
use crate::sim::{RecordingPolicy, SimConfig, Simulation, SnapshotLayout};
use crate::topology::{Fleet, FleetBuilder};

/// A ready-to-run fleet + event script + simulation configuration.
///
/// # Example
///
/// ```
/// use headroom_cluster::scenario::FleetScenario;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = FleetScenario::small(1).run_days(0.1)?;
/// assert_eq!(outcome.pools().len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetScenario {
    fleet: Fleet,
    events: EventScript,
    config: SimConfig,
    name: &'static str,
    model_swaps: Vec<ModelSwapSpec>,
}

impl FleetScenario {
    /// A laptop-friendly fleet: 3 datacenters, services B and D, 20 servers
    /// per pool (120 servers). Failures and incident days disabled so
    /// forecasting examples see clean curves.
    pub fn small(seed: u64) -> Self {
        let spec_b = MicroserviceKind::B
            .spec()
            .with_practice(crate::maintenance::AvailabilityPractice::WellManaged);
        let spec_d = MicroserviceKind::D.spec();
        let fleet = FleetBuilder::new(seed)
            .datacenters(3)
            .without_failures()
            .without_incidents()
            .deploy_with_spec(&spec_b, 20, spec_b.peak_rps_per_server)
            .expect("datacenters added")
            .deploy_with_spec(&spec_d, 20, spec_d.peak_rps_per_server)
            .expect("datacenters added")
            .build();
        FleetScenario {
            fleet,
            events: EventScript::empty(),
            config: SimConfig { seed, ..SimConfig::default() },
            name: "small",
            model_swaps: Vec::new(),
        }
    }

    /// The full paper-shaped fleet: 9 datacenters × 9 services at
    /// catalog sizes (≈6k servers). Use `scale` < 1.0 to shrink pools
    /// proportionally (minimum 4 servers per pool).
    pub fn paper_scale(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        let mut builder = FleetBuilder::new(seed).datacenters(9);
        for kind in MicroserviceKind::ALL {
            let spec = kind.spec();
            let n = ((spec.servers_per_pool as f64 * scale).round() as usize).max(4);
            builder = builder.deploy_service(kind, n).expect("datacenters added");
        }
        FleetScenario {
            fleet: builder.build(),
            events: EventScript::empty(),
            config: SimConfig { seed, ..SimConfig::default() },
            name: "paper-scale",
            model_swaps: Vec::new(),
        }
    }

    /// One service deployed across `datacenters` DCs with `servers_per_pool`
    /// servers — the shape of the paper's pool-reduction experiments.
    /// Failures and incidents are disabled for clean experiment curves.
    pub fn single_service(
        kind: MicroserviceKind,
        datacenters: usize,
        servers_per_pool: usize,
        seed: u64,
    ) -> Self {
        let spec = kind.spec().with_practice(crate::maintenance::AvailabilityPractice::WellManaged);
        let fleet = FleetBuilder::new(seed)
            .datacenters(datacenters)
            .without_failures()
            .without_incidents()
            .deploy_with_spec(&spec, servers_per_pool, spec.peak_rps_per_server)
            .expect("datacenters added")
            .build();
        FleetScenario {
            fleet,
            events: EventScript::empty(),
            config: SimConfig { seed, ..SimConfig::default() },
            name: "single-service",
            model_swaps: Vec::new(),
        }
    }

    /// Attaches an event script (surges, datacenter losses).
    pub fn with_events(mut self, events: EventScript) -> Self {
        self.events = events;
        self
    }

    /// Attaches an adversarial [`Scenario`]: its event script replaces any
    /// previous one, and its model swaps are scheduled fleet-wide (every
    /// pool's response model gets the swap's CPU scaling at the swap
    /// window) when the scenario is turned into a [`Simulation`].
    pub fn with_scenario(mut self, scenario: &Scenario) -> Self {
        self.events = scenario.script().clone();
        self.model_swaps = scenario.model_swaps().to_vec();
        self
    }

    /// Overrides the snapshot layout.
    pub fn with_layout(mut self, layout: SnapshotLayout) -> Self {
        self.config.layout = layout;
        self
    }

    /// Overrides the recording policy.
    pub fn with_recording(mut self, recording: RecordingPolicy) -> Self {
        self.config.recording = recording;
        self
    }

    /// Scenario name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The fleet (before simulation).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Converts into a [`Simulation`] for custom driving (interventions,
    /// observers). Scenario model swaps are pre-scheduled on every pool.
    pub fn into_simulation(self) -> Simulation {
        let swaps: Vec<(PoolId, WindowIndex, ServiceModel)> = self
            .model_swaps
            .iter()
            .flat_map(|swap| {
                self.fleet.pools().iter().map(move |p| {
                    (p.id, swap.window, p.model.clone().with_cpu_per_rps_scaled(swap.cpu_scale))
                })
            })
            .collect();
        let mut sim = Simulation::new(self.fleet, self.events, self.config);
        for (pool, window, model) in swaps {
            sim.schedule_model_swap(pool, window, model).expect("pool came from this fleet");
        }
        sim
    }

    /// Runs for `days` simulated days and returns the outcome.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] when `days` is not positive.
    pub fn run_days(self, days: f64) -> Result<ScenarioOutcome, ClusterError> {
        if days <= 0.0 || days.is_nan() {
            return Err(ClusterError::InvalidConfig("days must be positive"));
        }
        let mut sim = self.into_simulation();
        sim.run_days(days);
        let range =
            WindowRange::new(headroom_telemetry::time::WindowIndex(0), sim.current_window());
        let (fleet, store, availability) = sim.into_parts();
        Ok(ScenarioOutcome { fleet, store, availability, range })
    }
}

/// The artifacts of a completed scenario run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    fleet: Fleet,
    store: MetricStore,
    availability: AvailabilityLog,
    range: WindowRange,
}

impl ScenarioOutcome {
    /// All pool ids, sorted.
    pub fn pools(&self) -> Vec<PoolId> {
        self.store.pools()
    }

    /// The recorded metrics.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The availability log.
    pub fn availability(&self) -> &AvailabilityLog {
        &self.availability
    }

    /// The fleet as it ended the run.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The simulated window range.
    pub fn range(&self) -> WindowRange {
        self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::counter::CounterKind;

    #[test]
    fn small_scenario_runs() {
        let outcome = FleetScenario::small(1).run_days(0.1).unwrap();
        assert_eq!(outcome.pools().len(), 6);
        assert_eq!(outcome.range().len(), 72);
        assert!(outcome.store().sample_count() > 0);
    }

    #[test]
    fn paper_scale_has_all_services() {
        let scenario = FleetScenario::paper_scale(1, 0.05);
        let fleet = scenario.fleet();
        assert_eq!(fleet.datacenters().len(), 9);
        assert_eq!(fleet.pools().len(), 81);
        for kind in MicroserviceKind::ALL {
            assert_eq!(fleet.pools_of_service(kind).len(), 9);
        }
    }

    #[test]
    fn scale_shrinks_pools_with_floor() {
        let scenario = FleetScenario::paper_scale(1, 0.01);
        for pool in scenario.fleet().pools() {
            assert!(pool.size() >= 2);
        }
    }

    #[test]
    fn zero_days_rejected() {
        assert!(FleetScenario::small(1).run_days(0.0).is_err());
    }

    #[test]
    fn single_service_shape() {
        let outcome =
            FleetScenario::single_service(MicroserviceKind::D, 4, 8, 2).run_days(0.05).unwrap();
        assert_eq!(outcome.pools().len(), 4);
        let pool = outcome.pools()[0];
        let series =
            outcome.store().pool_mean_series(pool, CounterKind::LatencyP95Ms, outcome.range());
        assert!(!series.is_empty());
    }
}
