//! Server hardware generations.
//!
//! Fig. 3 of the paper shows a pool whose servers form two CPU-utilisation
//! clusters; investigation found "all servers in the less utilized range are
//! newer and more powerful than the other". A [`HardwareGeneration`] scales
//! the per-request CPU cost so mixed-generation pools reproduce exactly that
//! bimodality.

use std::fmt;

/// A server hardware generation with a relative CPU speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[non_exhaustive]
pub enum HardwareGeneration {
    /// Baseline generation (speed 1.0).
    #[default]
    Gen1,
    /// Mid refresh, ~35% faster per core-second.
    Gen2,
    /// Latest refresh, ~80% faster.
    Gen3,
}

impl HardwareGeneration {
    /// All generations, oldest first.
    pub const ALL: [HardwareGeneration; 3] =
        [HardwareGeneration::Gen1, HardwareGeneration::Gen2, HardwareGeneration::Gen3];

    /// Relative CPU speed; per-request CPU cost divides by this.
    pub fn speed_factor(&self) -> f64 {
        match self {
            HardwareGeneration::Gen1 => 1.0,
            HardwareGeneration::Gen2 => 1.35,
            HardwareGeneration::Gen3 => 1.8,
        }
    }
}

impl fmt::Display for HardwareGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareGeneration::Gen1 => write!(f, "gen1"),
            HardwareGeneration::Gen2 => write!(f, "gen2"),
            HardwareGeneration::Gen3 => write!(f, "gen3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_is_faster() {
        assert!(HardwareGeneration::Gen2.speed_factor() > HardwareGeneration::Gen1.speed_factor());
        assert!(HardwareGeneration::Gen3.speed_factor() > HardwareGeneration::Gen2.speed_factor());
    }

    #[test]
    fn default_is_gen1() {
        assert_eq!(HardwareGeneration::default(), HardwareGeneration::Gen1);
        assert_eq!(HardwareGeneration::Gen1.speed_factor(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(HardwareGeneration::Gen3.to_string(), "gen3");
    }
}
