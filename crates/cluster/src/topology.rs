//! Datacenters and fleet assembly.
//!
//! The paper's service spans nine datacenters in distinct geographic regions;
//! each region's demand peaks at a different UTC hour, which is what makes
//! the *global* fleet look half-idle while individual datacenters saturate.

use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_workload::DiurnalCurve;

use crate::catalog::{MicroserviceKind, ServiceSpec};
use crate::error::ClusterError;
use crate::failure::FailureModel;
use crate::maintenance::MaintenancePlan;
use crate::pool::Pool;
use crate::server::Server;

/// One datacenter: identity, regional phase, and routing weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Datacenter {
    /// Identity (displayed as `DC1`…`DC9` like the paper).
    pub id: DatacenterId,
    /// UTC hour at which this region's demand peaks.
    pub peak_hour_utc: f64,
    /// Relative share of global demand served here.
    pub weight: f64,
    /// Network-shape factor for Fig. 2's cross-DC variation.
    pub net_scale: f64,
}

/// The simulated fleet: datacenters plus pools.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fleet {
    datacenters: Vec<Datacenter>,
    pools: Vec<Pool>,
}

impl Fleet {
    /// The datacenters.
    pub fn datacenters(&self) -> &[Datacenter] {
        &self.datacenters
    }

    /// All pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// Mutable access to all pools (used by the simulation engine).
    pub(crate) fn pools_mut(&mut self) -> &mut [Pool] {
        &mut self.pools
    }

    /// Looks up a pool.
    pub fn pool(&self, id: PoolId) -> Option<&Pool> {
        self.pools.iter().find(|p| p.id == id)
    }

    /// Mutable pool lookup.
    pub fn pool_mut(&mut self, id: PoolId) -> Option<&mut Pool> {
        self.pools.iter_mut().find(|p| p.id == id)
    }

    /// Pools running `service`, ordered by datacenter.
    pub fn pools_of_service(&self, service: MicroserviceKind) -> Vec<PoolId> {
        let mut ids: Vec<(DatacenterId, PoolId)> = self
            .pools
            .iter()
            .filter(|p| p.service == service)
            .map(|p| (p.datacenter, p.id))
            .collect();
        ids.sort();
        ids.into_iter().map(|(_, p)| p).collect()
    }

    /// A datacenter by id.
    pub fn datacenter(&self, id: DatacenterId) -> Option<&Datacenter> {
        self.datacenters.iter().find(|d| d.id == id)
    }

    /// Total servers across all pools.
    pub fn server_count(&self) -> usize {
        self.pools.iter().map(Pool::size).sum()
    }
}

/// Incrementally assembles a [`Fleet`].
///
/// # Example
///
/// ```
/// use headroom_cluster::catalog::MicroserviceKind;
/// use headroom_cluster::topology::FleetBuilder;
///
/// # fn main() -> Result<(), headroom_cluster::ClusterError> {
/// let fleet = FleetBuilder::new(42)
///     .datacenters(3)
///     .deploy_service(MicroserviceKind::B, 20)?
///     .build();
/// assert_eq!(fleet.datacenters().len(), 3);
/// assert_eq!(fleet.pools().len(), 3);
/// // Pool sizes follow regional demand weights: 20 + 18 + 15.
/// assert_eq!(fleet.server_count(), 53);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetBuilder {
    seed: u64,
    datacenters: Vec<Datacenter>,
    pools: Vec<Pool>,
    next_pool: u32,
    next_server: u32,
    failures: Option<FailureModel>,
    incidents: bool,
}

/// Peak hours (UTC) for up to nine staggered regions.
const REGION_PEAK_HOURS: [f64; 9] = [14.0, 17.0, 20.0, 23.0, 2.0, 5.0, 8.0, 11.0, 15.5];
/// Routing weights for up to nine regions (larger markets first).
const REGION_WEIGHTS: [f64; 9] = [1.0, 0.9, 0.75, 0.6, 0.8, 0.7, 0.65, 0.55, 0.5];

impl FleetBuilder {
    /// Creates a builder; `seed` drives every stochastic choice downstream.
    pub fn new(seed: u64) -> Self {
        FleetBuilder {
            seed,
            datacenters: Vec::new(),
            pools: Vec::new(),
            next_pool: 0,
            next_server: 0,
            failures: Some(FailureModel::typical(seed ^ 0xFA11)),
            incidents: true,
        }
    }

    /// Adds `n` datacenters (max 9) with staggered regional peaks.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `n > 9`.
    pub fn datacenters(mut self, n: usize) -> Self {
        assert!((1..=9).contains(&n), "1..=9 datacenters supported");
        self.datacenters = (0..n)
            .map(|i| Datacenter {
                id: DatacenterId(i as u16),
                peak_hour_utc: REGION_PEAK_HOURS[i],
                weight: REGION_WEIGHTS[i],
                net_scale: 0.85 + 0.3 * (i as f64 / 8.0),
            })
            .collect();
        self
    }

    /// Disables unplanned server failures.
    pub fn without_failures(mut self) -> Self {
        self.failures = None;
        self
    }

    /// Disables maintenance incident days (clean pools for forecasting
    /// experiments).
    pub fn without_incidents(mut self) -> Self {
        self.incidents = false;
        self
    }

    /// Deploys `service` into every datacenter with `servers_per_pool`
    /// servers per pool, using the catalog spec for everything else.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] when no datacenters were added or
    /// `servers_per_pool == 0`.
    pub fn deploy_service(
        self,
        service: MicroserviceKind,
        servers_per_pool: usize,
    ) -> Result<Self, ClusterError> {
        let spec = service.spec();
        self.deploy_with_spec(&spec, servers_per_pool, spec.peak_rps_per_server)
    }

    /// Deploys with an explicit spec and peak RPS/server (for experiments
    /// that need custom response models or headroom levels).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] when no datacenters were added or
    /// `servers_per_pool == 0`.
    pub fn deploy_with_spec(
        mut self,
        spec: &ServiceSpec,
        servers_per_pool: usize,
        peak_rps_per_server: f64,
    ) -> Result<Self, ClusterError> {
        if self.datacenters.is_empty() {
            return Err(ClusterError::InvalidConfig("add datacenters before deploying services"));
        }
        if servers_per_pool == 0 {
            return Err(ClusterError::InvalidConfig("servers_per_pool must be positive"));
        }
        let dcs = self.datacenters.clone();
        let max_weight = dcs.iter().map(|d| d.weight).fold(f64::NEG_INFINITY, f64::max);
        for dc in &dcs {
            let pool_id = PoolId(self.next_pool);
            self.next_pool += 1;
            // Pool size follows the region's demand share, so every pool
            // carries the same peak RPS/server (service owners size each
            // region's pool for its own market).
            let pool_servers =
                ((servers_per_pool as f64 * dc.weight / max_weight).round() as usize).max(2);
            let servers: Vec<Server> = (0..pool_servers)
                .map(|i| {
                    let id = ServerId(self.next_server + i as u32);
                    Server::new(id, spec.generation_for(i, pool_servers))
                })
                .collect();
            self.next_server += pool_servers as u32;

            // Demand peaks at the regional peak hour, scaled so the pool
            // reaches the target peak RPS/server.
            let peak_total = peak_rps_per_server * pool_servers as f64;
            let demand = DiurnalCurve::new(1.0)
                .with_peak_hour(dc.peak_hour_utc)
                .with_noise(0.03)
                .with_peak_demand(peak_total);

            let mut plan = MaintenancePlan::new(
                spec.practice,
                crate::maintenance::hash2(self.seed, pool_id.0 as u64),
            );
            if !self.incidents {
                plan = plan.without_incidents();
            }

            self.pools.push(Pool {
                id: pool_id,
                datacenter: dc.id,
                service: spec.kind,
                model: spec.model.clone(),
                servers,
                demand,
                maintenance: plan,
                failures: self.failures,
                net_scale: dc.net_scale,
                local_hour_offset: (14.0 - dc.peak_hour_utc).rem_euclid(24.0),
            });
        }
        Ok(self)
    }

    /// Finalises the fleet.
    pub fn build(self) -> Fleet {
        Fleet { datacenters: self.datacenters, pools: self.pools }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_unique_ids() {
        let fleet = FleetBuilder::new(1)
            .datacenters(3)
            .deploy_service(MicroserviceKind::B, 10)
            .unwrap()
            .deploy_service(MicroserviceKind::D, 5)
            .unwrap()
            .build();
        assert_eq!(fleet.pools().len(), 6);
        let mut server_ids: Vec<u32> =
            fleet.pools().iter().flat_map(|p| p.server_ids()).map(|s| s.0).collect();
        let before = server_ids.len();
        server_ids.sort_unstable();
        server_ids.dedup();
        assert_eq!(server_ids.len(), before, "server ids must be unique");
        // Weighted sizes: B 10+9+8, D 5+5+4.
        assert_eq!(before, 41);
    }

    #[test]
    fn deploy_without_datacenters_fails() {
        let err = FleetBuilder::new(0).deploy_service(MicroserviceKind::A, 5).unwrap_err();
        assert!(matches!(err, ClusterError::InvalidConfig(_)));
    }

    #[test]
    fn zero_servers_rejected() {
        let err =
            FleetBuilder::new(0).datacenters(1).deploy_service(MicroserviceKind::A, 0).unwrap_err();
        assert!(matches!(err, ClusterError::InvalidConfig(_)));
    }

    #[test]
    fn pools_of_service_sorted_by_dc() {
        let fleet = FleetBuilder::new(1)
            .datacenters(4)
            .deploy_service(MicroserviceKind::G, 3)
            .unwrap()
            .build();
        let pools = fleet.pools_of_service(MicroserviceKind::G);
        assert_eq!(pools.len(), 4);
        for (i, p) in pools.iter().enumerate() {
            assert_eq!(fleet.pool(*p).unwrap().datacenter, DatacenterId(i as u16));
        }
        assert!(fleet.pools_of_service(MicroserviceKind::A).is_empty());
    }

    #[test]
    fn regional_peaks_are_staggered() {
        let fleet = FleetBuilder::new(1)
            .datacenters(9)
            .deploy_service(MicroserviceKind::E, 2)
            .unwrap()
            .build();
        let mut hours: Vec<f64> = fleet.datacenters().iter().map(|d| d.peak_hour_utc).collect();
        hours.sort_by(|a, b| a.partial_cmp(b).unwrap());
        hours.dedup();
        assert_eq!(hours.len(), 9, "all nine regions peak at distinct hours");
    }

    #[test]
    fn every_pool_reaches_target_peak_rps_per_server() {
        let fleet = FleetBuilder::new(1)
            .datacenters(2)
            .deploy_service(MicroserviceKind::B, 10)
            .unwrap()
            .build();
        // DC0 (weight 1.0) gets 10 servers; DC1 (weight 0.9) gets 9 — and
        // both run at the same target peak RPS/server.
        let pool = &fleet.pools()[0];
        assert_eq!(pool.size(), 10);
        assert!((pool.demand.peak_demand() / 10.0 - 380.0).abs() < 1.0);
        let pool2 = &fleet.pools()[1];
        assert_eq!(pool2.size(), 9);
        assert!((pool2.demand.peak_demand() / 9.0 - 380.0).abs() < 1.0);
    }

    #[test]
    fn local_hour_offset_puts_peak_at_2pm_local() {
        let fleet = FleetBuilder::new(1)
            .datacenters(5)
            .deploy_service(MicroserviceKind::B, 4)
            .unwrap()
            .build();
        for pool in fleet.pools() {
            let dc = fleet.datacenter(pool.datacenter).unwrap();
            let local_at_peak = pool.local_hour(dc.peak_hour_utc);
            assert!((local_at_peak - 14.0).abs() < 1e-9, "peak should be 14:00 local");
        }
    }

    #[test]
    fn without_failures_clears_model() {
        let fleet = FleetBuilder::new(1)
            .datacenters(1)
            .without_failures()
            .deploy_service(MicroserviceKind::A, 3)
            .unwrap()
            .build();
        assert!(fleet.pools()[0].failures.is_none());
    }
}
