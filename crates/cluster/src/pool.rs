//! Server pools and load balancing.
//!
//! "A server pool is a set of servers with a network load-balancer
//! distributing incoming requests evenly across them. All servers have the
//! same software and hardware" (paper, footnote 1). Capacity is managed at
//! pool granularity: interventions drain or restore servers.

use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_workload::DiurnalCurve;
use rand::rngs::StdRng;

use crate::catalog::MicroserviceKind;
use crate::error::ClusterError;
use crate::failure::FailureModel;
use crate::maintenance::MaintenancePlan;
use crate::server::{Server, ServerState};
use crate::service_model::ServiceModel;

/// A pool of identical servers running one micro-service in one datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct Pool {
    /// Pool identity.
    pub id: PoolId,
    /// Hosting datacenter.
    pub datacenter: DatacenterId,
    /// The micro-service this pool runs.
    pub service: MicroserviceKind,
    /// Black-box response model of the service on this pool's servers.
    pub model: ServiceModel,
    /// The servers (index order is stable; interventions drain the tail).
    pub servers: Vec<Server>,
    /// Total-demand curve for this pool (already datacenter-local).
    pub demand: DiurnalCurve,
    /// Planned-maintenance schedule.
    pub maintenance: MaintenancePlan,
    /// Unplanned-failure process (`None` disables failures).
    pub failures: Option<FailureModel>,
    /// Per-datacenter network shape factor (Fig. 2's cross-DC variation in
    /// network bytes/packets per request).
    pub net_scale: f64,
    /// Local-time offset: hour-of-day in this pool's region when UTC hour
    /// is zero (derived from the datacenter's peak hour).
    pub local_hour_offset: f64,
}

impl Pool {
    /// Number of servers administratively in rotation.
    pub fn active_count(&self) -> usize {
        self.servers.iter().filter(|s| s.is_active()).count()
    }

    /// Total servers owned by the pool (active + drained).
    pub fn size(&self) -> usize {
        self.servers.len()
    }

    /// Server ids in index order.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.iter().map(|s| s.id).collect()
    }

    /// Sets the number of active servers to `n` by draining from the tail
    /// (or restoring drained servers when growing).
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidResize`] when `n` exceeds the pool size or is
    /// zero.
    pub fn resize_active(&mut self, n: usize) -> Result<(), ClusterError> {
        if n == 0 || n > self.servers.len() {
            return Err(ClusterError::InvalidResize {
                pool: self.id,
                requested: n,
                available: self.servers.len(),
            });
        }
        for (i, server) in self.servers.iter_mut().enumerate() {
            server.state = if i < n { ServerState::Active } else { ServerState::Drained };
        }
        Ok(())
    }

    /// Converts a UTC hour-of-day to this pool's local hour.
    pub fn local_hour(&self, utc_hour: f64) -> f64 {
        (utc_hour + self.local_hour_offset).rem_euclid(24.0)
    }
}

/// Even load distribution with a small, realistic imbalance.
///
/// Production load balancers are *approximately* even; the paper's per-window
/// scatter reflects a little per-server spread. Shares are jittered by
/// `imbalance` (relative std) and renormalised so the total is preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalancer {
    /// Relative standard deviation of per-server shares (e.g. `0.02`).
    pub imbalance: f64,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        LoadBalancer { imbalance: 0.02 }
    }
}

impl LoadBalancer {
    /// Splits `total_rps` across `n` servers.
    ///
    /// Returns an empty vector when `n == 0` (nobody to serve — callers
    /// treat this as an outage).
    pub fn distribute(&self, total_rps: f64, n: usize, rng: &mut StdRng) -> Vec<f64> {
        let mut shares = Vec::new();
        self.distribute_into(&mut shares, total_rps, n, rng);
        shares
    }

    /// [`distribute`] into a caller-owned buffer (cleared first), so the
    /// per-window hot path reuses one allocation for the whole run. Draw
    /// order and arithmetic are identical to [`distribute`].
    ///
    /// [`distribute`]: LoadBalancer::distribute
    pub fn distribute_into(
        &self,
        shares: &mut Vec<f64>,
        total_rps: f64,
        n: usize,
        rng: &mut StdRng,
    ) {
        shares.clear();
        if n == 0 {
            return;
        }
        let even = total_rps / n as f64;
        if self.imbalance <= 0.0 {
            shares.extend((0..n).map(|_| even));
            return;
        }
        shares.extend((0..n).map(|_| (1.0 + gaussian(rng) * self.imbalance).max(0.0)));
        let sum: f64 = shares.iter().sum();
        if sum <= 0.0 {
            shares.iter_mut().for_each(|s| *s = even);
            return;
        }
        for s in shares.iter_mut() {
            *s = *s / sum * total_rps;
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareGeneration;
    use crate::maintenance::AvailabilityPractice;
    use rand::SeedableRng;

    fn test_pool(n: usize) -> Pool {
        Pool {
            id: PoolId(0),
            datacenter: DatacenterId(0),
            service: MicroserviceKind::B,
            model: ServiceModel::paper_pool_b(),
            servers: (0..n as u32)
                .map(|i| Server::new(ServerId(i), HardwareGeneration::Gen1))
                .collect(),
            demand: DiurnalCurve::new(1000.0),
            maintenance: MaintenancePlan::new(AvailabilityPractice::WellManaged, 0),
            failures: None,
            net_scale: 1.0,
            local_hour_offset: 0.0,
        }
    }

    #[test]
    fn resize_drains_tail() {
        let mut pool = test_pool(10);
        pool.resize_active(7).unwrap();
        assert_eq!(pool.active_count(), 7);
        assert_eq!(pool.size(), 10);
        assert!(pool.servers[9].state == ServerState::Drained);
        assert!(pool.servers[0].is_active());
        // Restore.
        pool.resize_active(10).unwrap();
        assert_eq!(pool.active_count(), 10);
    }

    #[test]
    fn resize_validates() {
        let mut pool = test_pool(5);
        assert!(matches!(
            pool.resize_active(0),
            Err(ClusterError::InvalidResize { requested: 0, .. })
        ));
        assert!(matches!(
            pool.resize_active(6),
            Err(ClusterError::InvalidResize { requested: 6, available: 5, .. })
        ));
    }

    #[test]
    fn lb_preserves_total() {
        let lb = LoadBalancer::default();
        let mut rng = StdRng::seed_from_u64(1);
        let shares = lb.distribute(1000.0, 7, &mut rng);
        assert_eq!(shares.len(), 7);
        let total: f64 = shares.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lb_shares_are_near_even() {
        let lb = LoadBalancer { imbalance: 0.02 };
        let mut rng = StdRng::seed_from_u64(2);
        let shares = lb.distribute(900.0, 9, &mut rng);
        for s in shares {
            assert!((s - 100.0).abs() < 15.0, "share {s} too far from even");
        }
    }

    #[test]
    fn lb_zero_imbalance_exactly_even() {
        let lb = LoadBalancer { imbalance: 0.0 };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(lb.distribute(100.0, 4, &mut rng), vec![25.0; 4]);
    }

    #[test]
    fn lb_empty_pool() {
        let lb = LoadBalancer::default();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(lb.distribute(100.0, 0, &mut rng).is_empty());
    }

    #[test]
    fn local_hour_wraps() {
        let mut pool = test_pool(1);
        pool.local_hour_offset = 8.0;
        assert!((pool.local_hour(20.0) - 4.0).abs() < 1e-9);
        assert!((pool.local_hour(2.0) - 10.0).abs() < 1e-9);
    }
}
