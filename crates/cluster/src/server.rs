//! Individual servers and their lifecycle state.

use headroom_telemetry::ids::ServerId;

use crate::hardware::HardwareGeneration;

/// Administrative state of a server within its pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServerState {
    /// In the load-balancer rotation (when not down for maintenance or
    /// failed).
    #[default]
    Active,
    /// Removed from rotation by a capacity intervention (reduction
    /// experiment); still owned by the pool and can be restored.
    Drained,
}

/// One server: identity, hardware, state, and process age.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Server {
    /// Fleet-unique identifier.
    pub id: ServerId,
    /// Hardware generation (affects per-request CPU cost).
    pub generation: HardwareGeneration,
    /// Administrative state.
    pub state: ServerState,
    /// Consecutive windows the service process has been up; resets when the
    /// server goes offline (restart). Drives leak accumulation.
    pub windows_online: u64,
}

impl Server {
    /// Creates an active server.
    pub fn new(id: ServerId, generation: HardwareGeneration) -> Self {
        Server { id, generation, state: ServerState::Active, windows_online: 0 }
    }

    /// Whether the server is administratively in rotation.
    pub fn is_active(&self) -> bool {
        self.state == ServerState::Active
    }

    /// Marks one window online (age grows).
    pub fn tick_online(&mut self) {
        self.windows_online += 1;
    }

    /// Marks one window offline (process restarts; age resets).
    pub fn tick_offline(&mut self) {
        self.windows_online = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_server_is_active() {
        let s = Server::new(ServerId(1), HardwareGeneration::Gen2);
        assert!(s.is_active());
        assert_eq!(s.windows_online, 0);
    }

    #[test]
    fn age_grows_and_resets() {
        let mut s = Server::new(ServerId(0), HardwareGeneration::Gen1);
        s.tick_online();
        s.tick_online();
        assert_eq!(s.windows_online, 2);
        s.tick_offline();
        assert_eq!(s.windows_online, 0);
    }

    #[test]
    fn drained_is_not_active() {
        let mut s = Server::new(ServerId(0), HardwareGeneration::Gen1);
        s.state = ServerState::Drained;
        assert!(!s.is_active());
    }
}
