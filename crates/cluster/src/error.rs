//! Error type for fleet construction and simulation.

use std::error::Error;
use std::fmt;

use headroom_telemetry::ids::PoolId;

/// Error produced by fleet construction or simulation control.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Referenced a pool that does not exist in the fleet.
    UnknownPool(PoolId),
    /// A configuration value was out of its valid domain.
    InvalidConfig(&'static str),
    /// An intervention asked for more capacity change than the pool has.
    InvalidResize {
        /// The pool being resized.
        pool: PoolId,
        /// Requested active server count.
        requested: usize,
        /// Servers physically in the pool.
        available: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownPool(p) => write!(f, "unknown pool {p}"),
            ClusterError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            ClusterError::InvalidResize { pool, requested, available } => write!(
                f,
                "cannot resize {pool} to {requested} active servers, only {available} exist"
            ),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(ClusterError::UnknownPool(PoolId(3)).to_string(), "unknown pool pool-3");
        assert!(ClusterError::InvalidConfig("bad").to_string().contains("bad"));
        let e = ClusterError::InvalidResize { pool: PoolId(1), requested: 10, available: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
