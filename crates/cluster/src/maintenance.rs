//! Planned-maintenance practices.
//!
//! §III-B2: server availability clusters by *pool*, not by server — "the
//! availability of servers within a pool is quite constant" (Fig. 15) —
//! because unavailability is dominated by the pool's rollout practice:
//! software/configuration deployments drain a batch of servers at a time.
//! Well-managed pools lose only ~2%; the fleet average was 17%; pools
//! "re-purposed during non-peak hours to run offline validation" fall below
//! 80%.
//!
//! A [`MaintenancePlan`] deterministically decides which servers of a pool
//! are offline in each window, rotating batches so every server shares the
//! downtime equally (which is what produces the tight per-pool availability
//! bands).

use headroom_telemetry::time::WindowIndex;

/// Windows per maintenance rotation batch (1 hour).
const ROTATION_WINDOWS: u64 = 30;

/// A pool's planned-maintenance/repurposing practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum AvailabilityPractice {
    /// Rolling deployments touching ~2% of the pool — the paper's
    /// best-managed population (≈98% available).
    #[default]
    WellManaged,
    /// ~4% of the pool under maintenance (≈96%).
    Moderate,
    /// ~6% (≈94%).
    Standard,
    /// ~9.5% (≈90.5%) — long deployment drains (the paper's pool C).
    Heavy,
    /// ~15% (≈85%) — the paper's mid-availability population.
    Relaxed,
    /// Pool repurposed for offline validation during local off-peak hours
    /// (≈72% available — the paper's sub-80% population).
    Repurposed,
}

impl AvailabilityPractice {
    /// Fraction of the pool offline at a given local hour.
    pub fn offline_fraction(&self, local_hour: f64) -> f64 {
        match self {
            AvailabilityPractice::WellManaged => 0.02,
            AvailabilityPractice::Moderate => 0.04,
            AvailabilityPractice::Standard => 0.06,
            AvailabilityPractice::Heavy => 0.095,
            AvailabilityPractice::Relaxed => 0.15,
            AvailabilityPractice::Repurposed => {
                // Two thirds of the pool runs offline validation during the
                // local night; the remainder comfortably covers the trough
                // demand without violating the latency SLO.
                if (0.0..8.0).contains(&local_hour) {
                    0.65
                } else {
                    0.015
                }
            }
        }
    }

    /// Long-run expected availability of a pool under this practice
    /// (averaged over the day, before incident days).
    pub fn expected_availability(&self) -> f64 {
        let mean_offline =
            (0..24).map(|h| self.offline_fraction(h as f64 + 0.5)).sum::<f64>() / 24.0;
        1.0 - mean_offline
    }
}

/// Deterministic per-pool maintenance schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenancePlan {
    /// The pool's practice.
    pub practice: AvailabilityPractice,
    /// Per-pool seed decorrelating rotation phases across pools.
    pub seed: u64,
    /// Probability that a whole day is an "incident day" with an extra 25%
    /// of the pool offline (the occasional major-unavailability days of
    /// Fig. 15). Set to 0 to disable.
    pub incident_day_probability: f64,
}

impl MaintenancePlan {
    /// Creates a plan with the default 3% incident-day rate.
    pub fn new(practice: AvailabilityPractice, seed: u64) -> Self {
        MaintenancePlan { practice, seed, incident_day_probability: 0.03 }
    }

    /// Disables incident days (for experiments that need clean pools).
    pub fn without_incidents(mut self) -> Self {
        self.incident_day_probability = 0.0;
        self
    }

    /// Whether `day` is an incident day for this pool.
    pub fn is_incident_day(&self, day: u64) -> bool {
        if self.incident_day_probability <= 0.0 {
            return false;
        }
        let h = hash2(self.seed, day);
        (h as f64 / u64::MAX as f64) < self.incident_day_probability
    }

    /// Fraction of the pool offline in `window` given the pool's local hour.
    pub fn offline_fraction(&self, window: WindowIndex, local_hour: f64) -> f64 {
        let mut f = self.practice.offline_fraction(local_hour);
        if self.is_incident_day(window.day()) {
            f = (f + 0.25).min(1.0);
        }
        f
    }

    /// Whether server `index` (of `pool_size`) is down for maintenance in
    /// `window`.
    ///
    /// The offline batch rotates hourly so downtime is spread evenly.
    pub fn is_offline(
        &self,
        index: usize,
        pool_size: usize,
        window: WindowIndex,
        local_hour: f64,
    ) -> bool {
        if pool_size == 0 {
            return false;
        }
        let fraction = self.offline_fraction(window, local_hour);
        let rotation = window.0 / ROTATION_WINDOWS;
        // Dither the fractional part per rotation so small pools still see
        // their long-run offline fraction (round() would pin a 5-server
        // pool's 2% practice at permanent zero).
        let exact = fraction * pool_size as f64;
        let mut count = exact.floor() as usize;
        let frac_part = exact - count as f64;
        if frac_part > 0.0 {
            let draw = hash2(self.seed ^ 0x0D17_4E12, rotation) as f64 / u64::MAX as f64;
            if draw < frac_part {
                count += 1;
            }
        }
        if count == 0 {
            return false;
        }
        if count >= pool_size {
            return true;
        }
        // Hash the rotation index so the batch start cycles through every
        // server (a linear stride aliases with small pool sizes and leaves
        // some servers permanently online).
        let start = (hash2(self.seed ^ 0xBA7C, rotation) % pool_size as u64) as usize;
        let end = start + count;
        if end <= pool_size {
            index >= start && index < end
        } else {
            index >= start || index < end - pool_size
        }
    }
}

/// Cheap deterministic 64-bit mix of two values (splitmix-style).
pub(crate) fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_telemetry::time::WINDOWS_PER_DAY;

    #[test]
    fn expected_availability_matches_paper_populations() {
        assert!((AvailabilityPractice::WellManaged.expected_availability() - 0.98).abs() < 0.001);
        assert!((AvailabilityPractice::Relaxed.expected_availability() - 0.85).abs() < 0.001);
        assert!((AvailabilityPractice::Heavy.expected_availability() - 0.905).abs() < 0.001);
        let rep = AvailabilityPractice::Repurposed.expected_availability();
        assert!(rep < 0.78, "repurposed pools sit below 80%: {rep}");
        assert!(rep > 0.68, "but not absurdly low: {rep}");
    }

    #[test]
    fn repurposed_offline_window_is_offpeak() {
        let p = AvailabilityPractice::Repurposed;
        assert!(p.offline_fraction(3.0) > 0.5);
        assert!(p.offline_fraction(14.0) < 0.05);
    }

    #[test]
    fn offline_count_matches_fraction() {
        let plan = MaintenancePlan::new(AvailabilityPractice::Heavy, 1).without_incidents();
        let n = 200;
        let offline = (0..n).filter(|&i| plan.is_offline(i, n, WindowIndex(100), 12.0)).count();
        assert_eq!(offline, (0.095f64 * n as f64).round() as usize);
    }

    #[test]
    fn rotation_spreads_downtime_evenly() {
        let plan = MaintenancePlan::new(AvailabilityPractice::Heavy, 7).without_incidents();
        let n = 50;
        let mut downtime = vec![0u32; n];
        for w in 0..(14 * WINDOWS_PER_DAY) {
            for (i, d) in downtime.iter_mut().enumerate() {
                if plan.is_offline(i, n, WindowIndex(w), 12.0) {
                    *d += 1;
                }
            }
        }
        let min = *downtime.iter().min().unwrap() as f64;
        let max = *downtime.iter().max().unwrap() as f64;
        assert!(max > 0.0);
        assert!(min / max > 0.5, "rotation should spread downtime: min {min} max {max}");
    }

    #[test]
    fn incident_days_are_rare_and_deterministic() {
        let plan = MaintenancePlan::new(AvailabilityPractice::WellManaged, 3);
        let incidents: Vec<u64> = (0..1000).filter(|&d| plan.is_incident_day(d)).collect();
        let rate = incidents.len() as f64 / 1000.0;
        assert!(rate > 0.005 && rate < 0.08, "rate {rate}");
        let plan2 = MaintenancePlan::new(AvailabilityPractice::WellManaged, 3);
        let incidents2: Vec<u64> = (0..1000).filter(|&d| plan2.is_incident_day(d)).collect();
        assert_eq!(incidents, incidents2);
    }

    #[test]
    fn incident_day_raises_offline_fraction() {
        let plan = MaintenancePlan {
            practice: AvailabilityPractice::WellManaged,
            seed: 0,
            incident_day_probability: 1.0,
        };
        let f = plan.offline_fraction(WindowIndex(0), 12.0);
        assert!((f - 0.27).abs() < 1e-9);
    }

    #[test]
    fn empty_pool_never_offline() {
        let plan = MaintenancePlan::new(AvailabilityPractice::Heavy, 0);
        assert!(!plan.is_offline(0, 0, WindowIndex(0), 12.0));
    }

    #[test]
    fn small_pools_still_take_downtime() {
        // round(0.02 * 5) == 0, but dithering must preserve the long-run
        // 2% offline fraction even for a 5-server pool.
        let plan = MaintenancePlan::new(AvailabilityPractice::WellManaged, 5).without_incidents();
        let n = 5;
        let mut offline = 0u64;
        let mut total = 0u64;
        for w in 0..(30 * WINDOWS_PER_DAY) {
            for i in 0..n {
                total += 1;
                if plan.is_offline(i, n, WindowIndex(w), 12.0) {
                    offline += 1;
                }
            }
        }
        let fraction = offline as f64 / total as f64;
        assert!((fraction - 0.02).abs() < 0.008, "long-run fraction {fraction:.4}");
    }

    #[test]
    fn incident_stacks_on_repurposing() {
        let plan = MaintenancePlan {
            practice: AvailabilityPractice::Repurposed,
            seed: 0,
            incident_day_probability: 1.0,
        };
        // Repurposed off-peak 0.65 + incident 0.25 = 0.90 ⇒ 9 of 10 offline.
        let offline = (0..10).filter(|&i| plan.is_offline(i, 10, WindowIndex(60), 3.0)).count();
        assert_eq!(offline, 9);
        // A fraction driven to 1.0 takes the whole pool down.
        let full = MaintenancePlan {
            practice: AvailabilityPractice::Relaxed,
            seed: 0,
            incident_day_probability: 1.0,
        };
        let f = full.offline_fraction(WindowIndex(60), 3.0);
        assert!((f - 0.40).abs() < 1e-9);
    }

    #[test]
    fn hash2_differs_across_inputs() {
        assert_ne!(hash2(1, 2), hash2(2, 1));
        assert_ne!(hash2(0, 0), hash2(0, 1));
        assert_eq!(hash2(5, 9), hash2(5, 9));
    }
}
