//! Black-box micro-service response models.
//!
//! Each micro-service is modelled only by its externally observable response
//! to per-server workload — exactly the quantities the paper's planner
//! measures:
//!
//! - **CPU** is linear in RPS (§II-A1, Fig. 2): `cpu = α·r + β`, scaled by
//!   hardware generation, with small multiplicative noise.
//! - **Latency** (p95, ms) follows the paper's published quadratics
//!   (Figs. 9/11) plus an M/M/1-style queueing knee as the server approaches
//!   its capacity, so the planner's extrapolations eventually meet a real
//!   saturation wall.
//! - **Disk/memory** activity is paging-dominated and mostly independent of
//!   workload (the "vertical patterns" of Fig. 2).
//! - **Network** bytes/packets are linear in RPS with per-datacenter
//!   variation supplied by the caller.
//!
//! Models for the paper's pools B and D use the exact coefficients the paper
//! reports, so forecast experiments regenerate the published numbers.

use headroom_telemetry::counter::Resource;
use headroom_telemetry::time::WindowIndex;
use headroom_workload::resource_profile::ResourceProfile;
use rand::rngs::StdRng;

use crate::hardware::HardwareGeneration;

/// Gaussian helper shared with the workload crate's convention.
fn gaussian(rng: &mut StdRng) -> f64 {
    use rand::RngExt;
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One logical table/sub-workload within a service (§II-A1's memcached-like
/// service whose single "requests" metric mixed two tables with different
/// costs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableWorkload {
    /// Long-run fraction of requests hitting this table.
    pub share: f64,
    /// CPU percent per RPS for this table's requests (Gen1 hardware).
    pub cpu_per_rps: f64,
    /// Window-to-window jitter of the share (what makes the *combined*
    /// metric noisy).
    pub share_jitter: f64,
}

/// Periodic background log upload (§II-A1's "periodic resource spikes
/// correlated with log uploads of many GB / hour").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUploadSpec {
    /// Period between uploads, in windows.
    pub period_windows: u64,
    /// Upload duration, in windows.
    pub duration_windows: u64,
    /// Extra CPU percent while uploading.
    pub cpu_pct: f64,
    /// Disk write bytes/sec while uploading.
    pub disk_write_bytes_per_sec: f64,
}

impl LogUploadSpec {
    /// Whether the upload is active in `window` (per-server phase offset
    /// spreads uploads across a pool).
    pub fn active(&self, window: WindowIndex, phase: u64) -> bool {
        if self.period_windows == 0 {
            return false;
        }
        (window.0 + phase) % self.period_windows < self.duration_windows
    }
}

/// The black-box response model of one micro-service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    /// CPU percent per RPS on Gen1 hardware (the paper's fitted slope).
    pub cpu_per_rps: f64,
    /// Baseline CPU percent (system processes; the fitted intercept).
    pub cpu_base: f64,
    /// Relative noise on the CPU reading.
    pub cpu_noise_rel: f64,
    /// Latency quadratic `[c0, c1, c2]` (p95 ms as a function of RPS/server).
    pub latency_coeffs: [f64; 3],
    /// Latency never reported below this floor (ms).
    pub latency_floor_ms: f64,
    /// Additive noise on reported latency (ms, std dev).
    pub latency_noise_ms: f64,
    /// Per-server RPS at which queueing saturates on Gen1 hardware.
    pub queue_capacity_rps: f64,
    /// Scale of the queueing-delay term (ms at ρ = 0.5).
    pub queue_scale_ms: f64,
    /// Mean baseline paging rate (pages/sec), workload-independent.
    pub paging_base: f64,
    /// Relative noise of paging (large ⇒ Fig. 2's vertical patterns).
    pub paging_noise_rel: f64,
    /// Paging added per RPS (pages/sec) — non-zero models cache-miss-heavy
    /// workloads whose memory activity tracks request volume.
    pub paging_per_rps: f64,
    /// Disk bytes read per page fault.
    pub page_bytes: f64,
    /// Baseline disk queue length.
    pub disk_queue_base: f64,
    /// Disk queue length added per RPS — non-zero models write-/IO-heavy
    /// workloads whose disk queue grows with request volume.
    pub disk_queue_per_rps: f64,
    /// Network bytes per request (both directions).
    pub net_bytes_per_req: f64,
    /// Network packets per request.
    pub net_pkts_per_req: f64,
    /// Request failure fraction at nominal load.
    pub error_rate: f64,
    /// Resident memory (MB) at start.
    pub memory_resident_mb: f64,
    /// Memory growth per window (MB) — non-zero models a leak for the
    /// regression lab.
    pub leak_mb_per_window: f64,
    /// Optional per-table sub-workloads (empty = single homogeneous workload).
    pub tables: Vec<TableWorkload>,
    /// Optional periodic background upload.
    pub log_upload: Option<LogUploadSpec>,
}

impl ServiceModel {
    /// Creates a minimal model from the three response essentials; all other
    /// parameters take representative defaults.
    ///
    /// # Panics
    ///
    /// Panics when `cpu_per_rps` or `queue capacity` would be non-positive.
    pub fn new(cpu_per_rps: f64, cpu_base: f64, latency_coeffs: [f64; 3]) -> Self {
        assert!(cpu_per_rps > 0.0 && cpu_per_rps.is_finite(), "cpu_per_rps must be positive");
        ServiceModel {
            cpu_per_rps,
            cpu_base,
            cpu_noise_rel: 0.03,
            latency_coeffs,
            latency_floor_ms: 1.0,
            latency_noise_ms: 0.4,
            queue_capacity_rps: 90.0 / cpu_per_rps, // CPU would hit ~90% there
            queue_scale_ms: 2.0,
            paging_base: 4_000.0,
            paging_noise_rel: 0.8,
            paging_per_rps: 0.0,
            page_bytes: 4096.0,
            disk_queue_base: 1.0,
            disk_queue_per_rps: 0.0,
            net_bytes_per_req: 40_000.0,
            net_pkts_per_req: 40.0,
            error_rate: 1e-5,
            memory_resident_mb: 8_000.0,
            leak_mb_per_window: 0.0,
            tables: Vec::new(),
            log_upload: None,
        }
    }

    /// Sets the queueing knee (per-server RPS at saturation, Gen1).
    pub fn with_queue_capacity(mut self, rps: f64) -> Self {
        assert!(rps > 0.0, "queue capacity must be positive");
        self.queue_capacity_rps = rps;
        self
    }

    /// Sets CPU reading noise (relative).
    pub fn with_cpu_noise(mut self, rel: f64) -> Self {
        self.cpu_noise_rel = rel.max(0.0);
        self
    }

    /// Sets latency noise (ms).
    pub fn with_latency_noise(mut self, ms: f64) -> Self {
        self.latency_noise_ms = ms.max(0.0);
        self
    }

    /// Adds per-table sub-workloads (shares are normalised).
    ///
    /// # Panics
    ///
    /// Panics when `tables` is empty or shares are all zero.
    pub fn with_tables(mut self, mut tables: Vec<TableWorkload>) -> Self {
        assert!(!tables.is_empty(), "tables must be non-empty");
        let total: f64 = tables.iter().map(|t| t.share).sum();
        assert!(total > 0.0, "table shares must not all be zero");
        for t in &mut tables {
            t.share /= total;
        }
        self.tables = tables;
        self
    }

    /// Adds a periodic background log upload.
    pub fn with_log_upload(mut self, spec: LogUploadSpec) -> Self {
        self.log_upload = Some(spec);
        self
    }

    /// Introduces a memory leak (MB per window) — regression-lab fodder.
    pub fn with_leak(mut self, mb_per_window: f64) -> Self {
        self.leak_mb_per_window = mb_per_window.max(0.0);
        self
    }

    /// Shapes the workload-coupled resource response from a demand-side
    /// [`ResourceProfile`]: per-request disk queueing, paging, and network
    /// payload. This is how scenarios where disk or network binds before
    /// CPU are built (§II-A1's limiting-resource loop).
    pub fn with_resource_profile(mut self, profile: &ResourceProfile) -> Self {
        self.disk_queue_per_rps = profile.disk_queue_per_rps.max(0.0);
        self.paging_per_rps = profile.pages_per_rps.max(0.0);
        self.net_bytes_per_req = profile.net_bytes_per_req.max(0.0);
        self
    }

    /// Scales the per-request CPU cost — models a release that makes every
    /// request cheaper or dearer (the canonical response-profile drift a
    /// streaming planner must detect when scheduled via
    /// `Simulation::schedule_model_swap`). The queueing knee moves with it:
    /// costlier requests saturate a server at proportionally less workload.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not positive and finite.
    pub fn with_cpu_per_rps_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "cpu scale must be positive");
        self.cpu_per_rps *= factor;
        // Table-mixed services derive CPU from the per-table costs, not the
        // headline slope — scale them too or the release would be invisible.
        for table in &mut self.tables {
            table.cpu_per_rps *= factor;
        }
        self.queue_capacity_rps /= factor;
        self
    }

    /// Scales the quadratic latency term — models a change that degrades
    /// latency at high load (the Fig. 16 defect).
    pub fn with_latency_quadratic_scaled(mut self, factor: f64) -> Self {
        self.latency_coeffs[2] *= factor;
        self
    }

    /// Whether every parameter of `self` and `other` is bit-for-bit
    /// identical — stricter than `==` (which calls `-0.0` and `0.0` equal
    /// even though an expression over them can round differently). This is
    /// the deduplication predicate of the streamed kernel cache: two pools
    /// may share one cached model only when evaluating either model is
    /// guaranteed to produce the same bits.
    pub fn bits_eq(&self, other: &ServiceModel) -> bool {
        let scalars = [
            (self.cpu_per_rps, other.cpu_per_rps),
            (self.cpu_base, other.cpu_base),
            (self.cpu_noise_rel, other.cpu_noise_rel),
            (self.latency_floor_ms, other.latency_floor_ms),
            (self.latency_noise_ms, other.latency_noise_ms),
            (self.queue_capacity_rps, other.queue_capacity_rps),
            (self.queue_scale_ms, other.queue_scale_ms),
            (self.paging_base, other.paging_base),
            (self.paging_noise_rel, other.paging_noise_rel),
            (self.paging_per_rps, other.paging_per_rps),
            (self.page_bytes, other.page_bytes),
            (self.disk_queue_base, other.disk_queue_base),
            (self.disk_queue_per_rps, other.disk_queue_per_rps),
            (self.net_bytes_per_req, other.net_bytes_per_req),
            (self.net_pkts_per_req, other.net_pkts_per_req),
            (self.error_rate, other.error_rate),
            (self.memory_resident_mb, other.memory_resident_mb),
            (self.leak_mb_per_window, other.leak_mb_per_window),
        ];
        scalars.iter().all(|&(a, b)| a.to_bits() == b.to_bits())
            && self
                .latency_coeffs
                .iter()
                .zip(&other.latency_coeffs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.tables.len() == other.tables.len()
            && self.tables.iter().zip(&other.tables).all(|(a, b)| {
                a.share.to_bits() == b.share.to_bits()
                    && a.cpu_per_rps.to_bits() == b.cpu_per_rps.to_bits()
                    && a.share_jitter.to_bits() == b.share_jitter.to_bits()
            })
            && match (&self.log_upload, &other.log_upload) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    a.period_windows == b.period_windows
                        && a.duration_windows == b.duration_windows
                        && a.cpu_pct.to_bits() == b.cpu_pct.to_bits()
                        && a.disk_write_bytes_per_sec.to_bits()
                            == b.disk_write_bytes_per_sec.to_bits()
                }
                _ => false,
            }
    }

    /// Noise-free mean CPU percent at `rps` per server on `hw`.
    pub fn cpu_mean(&self, rps: f64, hw: HardwareGeneration) -> f64 {
        let work = if self.tables.is_empty() {
            self.cpu_per_rps * rps
        } else {
            self.tables.iter().map(|t| t.share * rps * t.cpu_per_rps).sum()
        };
        ((self.cpu_base + work) / hw.speed_factor()).clamp(0.0, 100.0)
    }

    /// Noise-free mean p95 latency (ms) at `rps` per server on `hw`.
    pub fn latency_p95_mean(&self, rps: f64, hw: HardwareGeneration) -> f64 {
        let speed = hw.speed_factor();
        let r = rps / speed;
        let [c0, c1, c2] = self.latency_coeffs;
        let quad = c0 + c1 * r + c2 * r * r;
        let rho = (rps / (self.queue_capacity_rps * speed)).clamp(0.0, 0.999);
        let queue = self.queue_scale_ms * rho / (1.0 - rho);
        (quad + queue).max(self.latency_floor_ms)
    }

    /// Noise-free mean disk queue length at `rps` per server.
    ///
    /// Unlike CPU, disk throughput does not scale with the CPU hardware
    /// generation, so the response is generation-independent.
    pub fn disk_queue_mean(&self, rps: f64) -> f64 {
        self.disk_queue_base + self.disk_queue_per_rps * rps
    }

    /// Noise-free mean paging rate (pages/sec) at `rps` per server.
    pub fn paging_mean(&self, rps: f64) -> f64 {
        self.paging_base + self.paging_per_rps * rps
    }

    /// Noise-free mean network throughput (Mbps, both directions) at `rps`
    /// per server; `net_scale` carries the per-datacenter payload variation.
    pub fn network_mbps_mean(&self, rps: f64, net_scale: f64) -> f64 {
        rps * self.net_bytes_per_req * net_scale * 8.0 / 1e6
    }

    /// The noise-free mean utilization of every [`Resource`] at `rps` per
    /// server, indexed by [`Resource::index`] — the counter vector a
    /// snapshot row carries on the cheap (non-`Full`) recording paths.
    pub fn resource_means(
        &self,
        rps: f64,
        hw: HardwareGeneration,
        net_scale: f64,
    ) -> [f64; Resource::COUNT] {
        let mut out = [0.0; Resource::COUNT];
        out[Resource::Cpu.index()] = self.cpu_mean(rps, hw);
        out[Resource::DiskQueue.index()] = self.disk_queue_mean(rps);
        out[Resource::MemoryPages.index()] = self.paging_mean(rps);
        out[Resource::Network.index()] = self.network_mbps_mean(rps, net_scale);
        out
    }

    /// Per-server RPS at which mean CPU reaches `cpu_limit_pct` on `hw`.
    pub fn rps_at_cpu(&self, cpu_limit_pct: f64, hw: HardwareGeneration) -> f64 {
        let slope = if self.tables.is_empty() {
            self.cpu_per_rps
        } else {
            self.tables.iter().map(|t| t.share * t.cpu_per_rps).sum()
        };
        ((cpu_limit_pct * hw.speed_factor() - self.cpu_base) / slope).max(0.0)
    }

    /// Simulates only the workload-facing signals (CPU, latency) for one
    /// window — the cheap path used when the recording policy does not need
    /// disk/memory/network counters.
    ///
    /// Draws exactly three gaussians (CPU, p95, avg — in that order) and
    /// applies [`ServiceModel::lite_from_noise`]; the columnar simulator
    /// draws the same noise stream server by server and then applies the
    /// same kernel over whole column slices, so the two paths are
    /// bit-identical by construction.
    pub fn window_metrics_lite(
        &self,
        rps: f64,
        hw: HardwareGeneration,
        rng: &mut StdRng,
    ) -> (f64, f64, f64) {
        self.lite_from_noise(rps, hw, LiteNoise::draw(rng))
    }

    /// The deterministic core of [`ServiceModel::window_metrics_lite`]:
    /// `(cpu, latency_avg, latency_p95)` at `rps` per server from pre-drawn
    /// noise. One expression tree shared by the scalar row path and the
    /// element-wise columnar kernels — the bit-identity contract between
    /// the two simulator layouts rests on this being the only
    /// implementation.
    #[inline]
    pub fn lite_from_noise(
        &self,
        rps: f64,
        hw: HardwareGeneration,
        n: LiteNoise,
    ) -> (f64, f64, f64) {
        let cpu_clean = self.cpu_mean(rps, hw);
        let cpu = (cpu_clean * (1.0 + n.cpu * self.cpu_noise_rel)).clamp(0.0, 100.0);
        let latency_p95 = (self.latency_p95_mean(rps, hw) + n.p95 * self.latency_noise_ms)
            .max(self.latency_floor_ms);
        let latency_avg = (latency_p95 * 0.62 + n.avg * self.latency_noise_ms * 0.3)
            .max(self.latency_floor_ms * 0.5);
        (cpu, latency_avg, latency_p95)
    }

    /// Element-wise lite kernel over column slices: evaluates
    /// [`ServiceModel::lite_from_noise`] for every server of one pool,
    /// reading per-server workload, hardware generation, and pre-drawn
    /// noise columns, writing the CPU / avg-latency / p95-latency columns.
    /// No cross-element reduction happens here, so there is no float
    /// reassociation: each lane computes exactly the scalar expression.
    ///
    /// # Panics
    ///
    /// Panics when the slices disagree in length.
    pub fn lite_columns(&self, input: LiteColumnsIn<'_>, out: LiteColumnsOut<'_>) {
        let LiteColumnsIn { rps, hw, noise_cpu, noise_p95, noise_avg } = input;
        let LiteColumnsOut { cpu, latency_avg, latency_p95 } = out;
        let n = rps.len();
        assert!(
            [hw.len(), noise_cpu.len(), noise_p95.len(), noise_avg.len()].iter().all(|&l| l == n)
                && cpu.len() == n
                && latency_avg.len() == n
                && latency_p95.len() == n,
            "lite kernel columns disagree in length"
        );
        for i in 0..n {
            let noise = LiteNoise { cpu: noise_cpu[i], p95: noise_p95[i], avg: noise_avg[i] };
            let (c, avg, p95) = self.lite_from_noise(rps[i], hw[i], noise);
            cpu[i] = c;
            latency_avg[i] = avg;
            latency_p95[i] = p95;
        }
    }

    /// Element-wise noise-free resource-mean kernels over column slices:
    /// disk queue, paging, and network columns from the workload column —
    /// the columnar counterpart of calling [`ServiceModel::disk_queue_mean`]
    /// / [`ServiceModel::paging_mean`] / [`ServiceModel::network_mbps_mean`]
    /// per server on the cheap recording paths.
    ///
    /// # Panics
    ///
    /// Panics when the slices disagree in length.
    pub fn resource_mean_columns(
        &self,
        rps: &[f64],
        net_scale: f64,
        disk_queue: &mut [f64],
        memory_pages: &mut [f64],
        network_mbps: &mut [f64],
    ) {
        let n = rps.len();
        assert!(
            disk_queue.len() == n && memory_pages.len() == n && network_mbps.len() == n,
            "resource-mean columns disagree in length"
        );
        for i in 0..n {
            disk_queue[i] = self.disk_queue_mean(rps[i]);
            memory_pages[i] = self.paging_mean(rps[i]);
            network_mbps[i] = self.network_mbps_mean(rps[i], net_scale);
        }
    }

    /// Simulates one 120-second window for one server.
    ///
    /// `windows_online` is the server's age since its last restart (drives
    /// leak growth); `phase` staggers background tasks across servers;
    /// `net_scale` carries per-datacenter network-shape variation.
    #[allow(clippy::too_many_arguments)] // mirrors the counter row the store records
    pub fn window_metrics(
        &self,
        rps: f64,
        hw: HardwareGeneration,
        window: WindowIndex,
        windows_online: u64,
        phase: u64,
        net_scale: f64,
        rng: &mut StdRng,
    ) -> ServerWindowMetrics {
        let speed = hw.speed_factor();

        // Per-table split with jittered shares.
        let mut table_rps: Vec<f64> = Vec::with_capacity(self.tables.len());
        let mut table_cpu: Vec<f64> = Vec::with_capacity(self.tables.len());
        let workload_cpu = if self.tables.is_empty() {
            self.cpu_per_rps * rps
        } else {
            let mut shares: Vec<f64> = self
                .tables
                .iter()
                .map(|t| (t.share * (1.0 + gaussian(rng) * t.share_jitter)).max(0.0))
                .collect();
            let total: f64 = shares.iter().sum();
            if total > 0.0 {
                for s in &mut shares {
                    *s /= total;
                }
            }
            let mut sum = 0.0;
            for (t, &s) in self.tables.iter().zip(&shares) {
                let t_rps = s * rps;
                let t_cpu = t_rps * t.cpu_per_rps / speed;
                table_rps.push(t_rps);
                table_cpu.push(t_cpu);
                sum += t_rps * t.cpu_per_rps;
            }
            sum
        };

        let active_upload = self.log_upload.filter(|u| u.active(window, phase));
        let upload_cpu = active_upload.map(|u| u.cpu_pct).unwrap_or(0.0);

        let cpu_clean = (self.cpu_base + workload_cpu) / speed + upload_cpu;
        let cpu = (cpu_clean * (1.0 + gaussian(rng) * self.cpu_noise_rel)).clamp(0.0, 100.0);

        let latency_p95 = (self.latency_p95_mean(rps, hw) + gaussian(rng) * self.latency_noise_ms)
            .max(self.latency_floor_ms);
        let latency_avg = (latency_p95 * 0.62 + gaussian(rng) * self.latency_noise_ms * 0.3)
            .max(self.latency_floor_ms * 0.5);

        // Paging-dominated disk activity, plus any workload-coupled term
        // (zero by default — Fig. 2's vertical patterns).
        let paging =
            (self.paging_mean(rps) * (1.0 + gaussian(rng) * self.paging_noise_rel)).max(0.0);
        let disk_read = paging * self.page_bytes;
        let disk_write = match active_upload {
            Some(u) => u.disk_write_bytes_per_sec,
            None => disk_read * 0.1,
        };
        let disk_queue = (self.disk_queue_mean(rps) + gaussian(rng).abs() * 1.5).max(0.0);

        let net_bytes =
            (rps * self.net_bytes_per_req * net_scale * (1.0 + gaussian(rng) * 0.05)).max(0.0);
        let net_pkts =
            (rps * self.net_pkts_per_req * net_scale * (1.0 + gaussian(rng) * 0.05)).max(0.0);

        let errors = (rps * self.error_rate * (1.0 + gaussian(rng).abs())).max(0.0);
        let memory_mb = self.memory_resident_mb + self.leak_mb_per_window * windows_online as f64;

        ServerWindowMetrics {
            cpu_pct: cpu,
            latency_avg_ms: latency_avg,
            latency_p95_ms: latency_p95,
            disk_read_bytes: disk_read,
            disk_write_bytes: disk_write,
            disk_queue,
            memory_pages_per_sec: paging,
            network_bytes: net_bytes,
            network_pkts: net_pkts,
            errors_per_sec: errors,
            memory_resident_mb: memory_mb,
            table_rps,
            table_cpu,
        }
    }

    /// The paper's pool-B service (query modification, §III-A1): CPU
    /// `y = 0.028x + 1.37`, latency `y = 4.028e-5x² − 0.031x + 36.68`.
    pub fn paper_pool_b() -> Self {
        ServiceModel::new(0.028, 1.37, [36.68, -0.031, 4.028e-5])
            .with_queue_capacity(2_800.0)
            .with_cpu_noise(0.025)
            .with_latency_noise(0.5)
    }

    /// The paper's pool-D service (datacenter traffic routing, §III-A2):
    /// CPU `y = 0.0916x + 5.006`, latency `y = 4.66e-3x² − 0.80x + 86.50`.
    pub fn paper_pool_d() -> Self {
        ServiceModel::new(0.0916, 5.006, [86.50, -0.80, 4.66e-3])
            .with_queue_capacity(800.0)
            .with_cpu_noise(0.03)
            .with_latency_noise(0.8)
    }
}

/// Pre-drawn gaussian noise for one server's lite window metrics, in the
/// exact draw order of [`ServiceModel::window_metrics_lite`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LiteNoise {
    /// Relative CPU-reading noise draw.
    pub cpu: f64,
    /// Additive p95-latency noise draw (scaled by the model's ms sigma).
    pub p95: f64,
    /// Additive avg-latency noise draw.
    pub avg: f64,
}

impl LiteNoise {
    /// Draws one server's lite noise — three gaussians, in the canonical
    /// CPU → p95 → avg order. Both simulator layouts consume the RNG
    /// through this one function, so their noise streams cannot diverge.
    pub fn draw(rng: &mut StdRng) -> Self {
        LiteNoise { cpu: gaussian(rng), p95: gaussian(rng), avg: gaussian(rng) }
    }
}

/// Input column slices of [`ServiceModel::lite_columns`] — one pool's
/// servers, all the same length.
#[derive(Debug)]
pub struct LiteColumnsIn<'a> {
    /// Per-server workload (RPS).
    pub rps: &'a [f64],
    /// Per-server hardware generation.
    pub hw: &'a [HardwareGeneration],
    /// Pre-drawn CPU noise per server.
    pub noise_cpu: &'a [f64],
    /// Pre-drawn p95-latency noise per server.
    pub noise_p95: &'a [f64],
    /// Pre-drawn avg-latency noise per server.
    pub noise_avg: &'a [f64],
}

/// Output column slices of [`ServiceModel::lite_columns`].
#[derive(Debug)]
pub struct LiteColumnsOut<'a> {
    /// CPU percent per server.
    pub cpu: &'a mut [f64],
    /// Mean latency (ms) per server.
    pub latency_avg: &'a mut [f64],
    /// p95 latency (ms) per server.
    pub latency_p95: &'a mut [f64],
}

/// The counters produced by one server for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerWindowMetrics {
    /// CPU percent.
    pub cpu_pct: f64,
    /// Mean latency (ms).
    pub latency_avg_ms: f64,
    /// p95 latency (ms).
    pub latency_p95_ms: f64,
    /// Disk read bytes/sec.
    pub disk_read_bytes: f64,
    /// Disk write bytes/sec.
    pub disk_write_bytes: f64,
    /// Disk queue length.
    pub disk_queue: f64,
    /// Paging rate.
    pub memory_pages_per_sec: f64,
    /// Network bytes/sec.
    pub network_bytes: f64,
    /// Network packets/sec.
    pub network_pkts: f64,
    /// Errors/sec.
    pub errors_per_sec: f64,
    /// Resident memory (MB).
    pub memory_resident_mb: f64,
    /// Per-table RPS (empty when the model has no tables).
    pub table_rps: Vec<f64>,
    /// Per-table CPU percent.
    pub table_cpu: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cpu_scale_reaches_table_mixed_models() {
        // Table-mixed services derive CPU from per-table costs; the release
        // helper must scale the observable curve for them too.
        let m = ServiceModel::new(0.02, 1.0, [0.0, 0.0, 30.0]).with_tables(vec![
            TableWorkload { share: 0.7, cpu_per_rps: 0.01, share_jitter: 0.0 },
            TableWorkload { share: 0.3, cpu_per_rps: 0.05, share_jitter: 0.0 },
        ]);
        let hw = HardwareGeneration::Gen1;
        let before = m.cpu_mean(300.0, hw) - 1.0;
        let scaled = m.clone().with_cpu_per_rps_scaled(2.0);
        let after = scaled.cpu_mean(300.0, hw) - 1.0;
        assert!((after / before - 2.0).abs() < 1e-12, "workload CPU doubled: {before} -> {after}");
        assert!((scaled.queue_capacity_rps - m.queue_capacity_rps / 2.0).abs() < 1e-12);
    }

    #[test]
    fn resource_profile_shapes_response_curves() {
        let m =
            ServiceModel::paper_pool_b().with_resource_profile(&ResourceProfile::network_heavy());
        // The namesake resource responds to workload…
        let means_lo = m.resource_means(100.0, HardwareGeneration::Gen1, 1.0);
        let means_hi = m.resource_means(400.0, HardwareGeneration::Gen1, 1.0);
        let net = Resource::Network.index();
        assert!((means_hi[net] / means_lo[net] - 4.0).abs() < 1e-9, "network linear in RPS");
        assert!((means_lo[net] - 100.0 * 450_000.0 * 8.0 / 1e6).abs() < 1e-9);
        // …and the index mapping matches the enum.
        assert_eq!(means_lo[Resource::Cpu.index()], m.cpu_mean(100.0, HardwareGeneration::Gen1));
        assert_eq!(means_lo[Resource::DiskQueue.index()], m.disk_queue_mean(100.0));
        assert_eq!(means_lo[Resource::MemoryPages.index()], m.paging_mean(100.0));
    }

    #[test]
    fn default_disk_and_paging_are_workload_flat() {
        // Fig. 2's "vertical patterns": without a profile, only CPU and
        // network respond to workload.
        let m = ServiceModel::paper_pool_b();
        assert_eq!(m.disk_queue_mean(0.0), m.disk_queue_mean(1_000.0));
        assert_eq!(m.paging_mean(0.0), m.paging_mean(1_000.0));
    }

    #[test]
    fn cpu_linear_in_rps() {
        let m = ServiceModel::paper_pool_b();
        let hw = HardwareGeneration::Gen1;
        let c100 = m.cpu_mean(100.0, hw);
        let c200 = m.cpu_mean(200.0, hw);
        let c300 = m.cpu_mean(300.0, hw);
        assert!(((c200 - c100) - (c300 - c200)).abs() < 1e-12, "equal increments");
        assert!((c100 - (0.028 * 100.0 + 1.37)).abs() < 1e-12);
    }

    #[test]
    fn paper_pool_b_forecast_points() {
        let m = ServiceModel::paper_pool_b();
        let hw = HardwareGeneration::Gen1;
        // Paper: 16.5% CPU at 540 RPS/server.
        assert!((m.cpu_mean(540.0, hw) - 16.49).abs() < 0.1);
        // Paper: ~12% CPU and 30.5 ms at 377 RPS/server.
        assert!((m.cpu_mean(377.0, hw) - 11.9).abs() < 0.3);
        let lat = m.latency_p95_mean(377.0, hw);
        assert!((lat - 30.8).abs() < 1.0, "got {lat}");
    }

    #[test]
    fn paper_pool_d_forecast_points() {
        let m = ServiceModel::paper_pool_d();
        let hw = HardwareGeneration::Gen1;
        // Paper: 13.7% CPU at 94.9 RPS/server, ~52.x ms latency.
        assert!((m.cpu_mean(94.9, hw) - 13.7).abs() < 0.2);
        let lat = m.latency_p95_mean(94.9, hw);
        assert!((lat - 52.8).abs() < 1.5, "got {lat}");
    }

    #[test]
    fn faster_hardware_runs_cooler() {
        let m = ServiceModel::paper_pool_d();
        let slow = m.cpu_mean(80.0, HardwareGeneration::Gen1);
        let fast = m.cpu_mean(80.0, HardwareGeneration::Gen3);
        assert!(fast < slow * 0.6);
    }

    #[test]
    fn latency_has_queueing_knee() {
        let m = ServiceModel::paper_pool_d();
        let hw = HardwareGeneration::Gen1;
        let mid = m.latency_p95_mean(400.0, hw);
        let near_sat = m.latency_p95_mean(780.0, hw);
        assert!(near_sat > mid * 1.5, "knee should dominate near capacity: {mid} vs {near_sat}");
    }

    #[test]
    fn latency_elevated_at_low_load() {
        // The paper's quadratics have negative linear terms: latency at very
        // low RPS exceeds the minimum (cache priming / JIT effects).
        let m = ServiceModel::paper_pool_d();
        let hw = HardwareGeneration::Gen1;
        let low = m.latency_p95_mean(5.0, hw);
        let optimal = m.latency_p95_mean(85.0, hw);
        assert!(low > optimal + 20.0, "low {low} vs optimal {optimal}");
    }

    #[test]
    fn rps_at_cpu_inverts_cpu_mean() {
        let m = ServiceModel::paper_pool_b();
        let hw = HardwareGeneration::Gen2;
        let rps = m.rps_at_cpu(20.0, hw);
        assert!((m.cpu_mean(rps, hw) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn lite_columns_match_scalar_bitwise() {
        // The columnar kernel must reproduce the scalar lite path bit for
        // bit: same noise, same per-element expression, any hardware mix.
        let m = ServiceModel::paper_pool_d();
        let n = 37;
        let mut rng = StdRng::seed_from_u64(5);
        let rps: Vec<f64> = (0..n).map(|i| 40.0 + 17.3 * i as f64).collect();
        let hw: Vec<HardwareGeneration> = (0..n)
            .map(|i| match i % 3 {
                0 => HardwareGeneration::Gen1,
                1 => HardwareGeneration::Gen2,
                _ => HardwareGeneration::Gen3,
            })
            .collect();
        let noise: Vec<LiteNoise> = (0..n).map(|_| LiteNoise::draw(&mut rng)).collect();
        let scalar: Vec<(f64, f64, f64)> =
            (0..n).map(|i| m.lite_from_noise(rps[i], hw[i], noise[i])).collect();
        let (mut cpu, mut avg, mut p95) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        m.lite_columns(
            LiteColumnsIn {
                rps: &rps,
                hw: &hw,
                noise_cpu: &noise.iter().map(|x| x.cpu).collect::<Vec<_>>(),
                noise_p95: &noise.iter().map(|x| x.p95).collect::<Vec<_>>(),
                noise_avg: &noise.iter().map(|x| x.avg).collect::<Vec<_>>(),
            },
            LiteColumnsOut { cpu: &mut cpu, latency_avg: &mut avg, latency_p95: &mut p95 },
        );
        for i in 0..n {
            assert!(cpu[i] == scalar[i].0, "cpu lane {i}");
            assert!(avg[i] == scalar[i].1, "avg lane {i}");
            assert!(p95[i] == scalar[i].2, "p95 lane {i}");
        }
        // Resource means likewise.
        let (mut dq, mut pg, mut nm) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        m.resource_mean_columns(&rps, 1.3, &mut dq, &mut pg, &mut nm);
        for i in 0..n {
            assert!(dq[i] == m.disk_queue_mean(rps[i]));
            assert!(pg[i] == m.paging_mean(rps[i]));
            assert!(nm[i] == m.network_mbps_mean(rps[i], 1.3));
        }
    }

    #[test]
    fn window_metrics_deterministic_per_seed() {
        let m = ServiceModel::paper_pool_b();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a =
            m.window_metrics(200.0, HardwareGeneration::Gen1, WindowIndex(5), 10, 0, 1.0, &mut r1);
        let b =
            m.window_metrics(200.0, HardwareGeneration::Gen1, WindowIndex(5), 10, 0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn tables_split_preserves_total_rps() {
        let m = ServiceModel::new(0.05, 1.0, [10.0, 0.0, 1e-5]).with_tables(vec![
            TableWorkload { share: 0.7, cpu_per_rps: 0.03, share_jitter: 0.1 },
            TableWorkload { share: 0.3, cpu_per_rps: 0.12, share_jitter: 0.1 },
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let w =
            m.window_metrics(100.0, HardwareGeneration::Gen1, WindowIndex(0), 0, 0, 1.0, &mut rng);
        assert_eq!(w.table_rps.len(), 2);
        let total: f64 = w.table_rps.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn combined_metric_noisier_than_split() {
        // The §II-A1 story: mixing two tables with very different costs makes
        // whole-server CPU noisy against total RPS; per-table CPU stays tight.
        let m =
            ServiceModel::new(0.05, 1.0, [10.0, 0.0, 1e-5]).with_cpu_noise(0.0).with_tables(vec![
                TableWorkload { share: 0.5, cpu_per_rps: 0.02, share_jitter: 0.25 },
                TableWorkload { share: 0.5, cpu_per_rps: 0.20, share_jitter: 0.25 },
            ]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut combined = Vec::new();
        let mut per_table_ratio = Vec::new();
        for w in 0..200u64 {
            let m0 = m.window_metrics(
                100.0,
                HardwareGeneration::Gen1,
                WindowIndex(w),
                0,
                0,
                1.0,
                &mut rng,
            );
            combined.push(m0.table_cpu.iter().sum::<f64>());
            per_table_ratio.push(m0.table_cpu[1] / m0.table_rps[1].max(1e-9));
        }
        let cv = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
            var.sqrt() / mean
        };
        assert!(cv(&combined) > 10.0 * cv(&per_table_ratio), "combined should be much noisier");
    }

    #[test]
    fn log_upload_spikes_cpu() {
        let spec = LogUploadSpec {
            period_windows: 30,
            duration_windows: 2,
            cpu_pct: 25.0,
            disk_write_bytes_per_sec: 3e8,
        };
        let m = ServiceModel::paper_pool_b().with_log_upload(spec).with_cpu_noise(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let quiet =
            m.window_metrics(100.0, HardwareGeneration::Gen1, WindowIndex(5), 0, 0, 1.0, &mut rng);
        let loud =
            m.window_metrics(100.0, HardwareGeneration::Gen1, WindowIndex(30), 0, 0, 1.0, &mut rng);
        assert!(loud.cpu_pct > quiet.cpu_pct + 20.0);
        assert!(loud.disk_write_bytes > 1e8);
    }

    #[test]
    fn leak_grows_memory() {
        let m = ServiceModel::paper_pool_b().with_leak(2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let young =
            m.window_metrics(10.0, HardwareGeneration::Gen1, WindowIndex(0), 0, 0, 1.0, &mut rng);
        let old =
            m.window_metrics(10.0, HardwareGeneration::Gen1, WindowIndex(0), 500, 0, 1.0, &mut rng);
        assert!((old.memory_resident_mb - young.memory_resident_mb - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn upload_phase_staggers_servers() {
        let spec = LogUploadSpec {
            period_windows: 10,
            duration_windows: 1,
            cpu_pct: 10.0,
            disk_write_bytes_per_sec: 1e8,
        };
        assert!(spec.active(WindowIndex(0), 0));
        assert!(!spec.active(WindowIndex(0), 5));
        assert!(spec.active(WindowIndex(5), 5));
    }

    #[test]
    #[should_panic(expected = "cpu_per_rps must be positive")]
    fn invalid_slope_panics() {
        let _ = ServiceModel::new(0.0, 1.0, [0.0; 3]);
    }
}
