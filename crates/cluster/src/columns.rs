//! Columnar (struct-of-arrays) per-window snapshots.
//!
//! [`SnapshotColumns`] stores one window's fleet observation as
//! per-pool-contiguous *columns* — one dense `f64` array per counter plus a
//! packed online bitmask — instead of an array of ~100-byte
//! [`SnapshotRow`] structs. Rows appear in the same fleet deployment order
//! as the row path (pool by pool, servers in pool index order), so the
//! [`crate::sim::PoolSlice`] partition indexes both layouts identically.
//!
//! Why columns: every downstream consumer of a window is a *columnar*
//! computation. The simulator's response-model kernels are element-wise
//! maps over per-server workload; shard ingestion sums each counter over a
//! pool's servers. With rows, both walk 100+-byte strides and drag every
//! counter through cache to touch one; with columns they stream exactly the
//! bytes they use, the hardware prefetcher sees dense sequential reads, and
//! the element-wise kernels auto-vectorize. The buffers are reused across
//! windows, so the steady-state columnar window path performs no heap
//! allocation (gated, together with the row path, by the counting-allocator
//! tests in `crates/bench`).
//!
//! **Offline contract.** A row whose online bit is clear carries exactly
//! `+0.0` in every metric column (and `0.0` RPS), mirroring the zeroed
//! fields of an offline [`SnapshotRow`]. Aggregators lean on this: summing
//! a column over a pool's slice *unconditionally* adds only `+0.0` for
//! offline servers, which leaves every non-negative partial sum bit-exact —
//! so columnar aggregation needs no per-row branch and stays bit-identical
//! to the row path's skip-offline loop. The serving-server count comes from
//! a popcount over the bitmask.
//!
//! The row layout stays fully supported (see
//! [`crate::sim::SnapshotLayout`]); [`SnapshotColumns::from_rows`] /
//! [`SnapshotColumns::to_rows`] convert losslessly between the two for A/B
//! property tests.

use headroom_telemetry::ids::{DatacenterId, PoolId, ServerId};
use headroom_telemetry::time::WindowIndex;

use crate::sim::{PoolSlice, SnapshotRow};

/// One window's fleet observation in struct-of-arrays layout.
///
/// All columns have the same length (one entry per server, in fleet
/// deployment order). Identity columns (server, pool, datacenter) are
/// static for a given fleet; the metric columns and the online bitmask are
/// rewritten every window into the same buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotColumns {
    /// Server identity per row.
    pub(crate) server: Vec<ServerId>,
    /// Owning pool per row.
    pub(crate) pool: Vec<PoolId>,
    /// Hosting datacenter per row.
    pub(crate) datacenter: Vec<DatacenterId>,
    /// Packed online bits, row `i` at word `i / 64`, bit `i % 64`.
    pub(crate) online: Vec<u64>,
    /// Requests per second routed to each server (0 when offline).
    pub(crate) rps: Vec<f64>,
    /// CPU percent (+0.0 when offline or not recorded).
    pub(crate) cpu_pct: Vec<f64>,
    /// p95 latency in ms (+0.0 when offline or not recorded).
    pub(crate) latency_p95_ms: Vec<f64>,
    /// Disk queue length (+0.0 when offline or not recorded).
    pub(crate) disk_queue: Vec<f64>,
    /// Memory paging rate, pages/sec (+0.0 when offline or not recorded).
    pub(crate) memory_pages_per_sec: Vec<f64>,
    /// Network throughput, Mbps (+0.0 when offline or not recorded).
    pub(crate) network_mbps: Vec<f64>,
}

impl SnapshotColumns {
    /// Empty columns; sized on first use.
    pub fn new() -> Self {
        SnapshotColumns::default()
    }

    /// Number of rows (servers) held.
    pub fn len(&self) -> usize {
        self.rps.len()
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.rps.is_empty()
    }

    /// The per-row RPS column.
    pub fn rps(&self) -> &[f64] {
        &self.rps
    }

    /// The per-row CPU-percent column.
    pub fn cpu_pct(&self) -> &[f64] {
        &self.cpu_pct
    }

    /// The per-row p95-latency column (ms).
    pub fn latency_p95_ms(&self) -> &[f64] {
        &self.latency_p95_ms
    }

    /// The per-row disk-queue-length column.
    pub fn disk_queue(&self) -> &[f64] {
        &self.disk_queue
    }

    /// The per-row paging-rate column (pages/sec).
    pub fn memory_pages_per_sec(&self) -> &[f64] {
        &self.memory_pages_per_sec
    }

    /// The per-row network-throughput column (Mbps).
    pub fn network_mbps(&self) -> &[f64] {
        &self.network_mbps
    }

    /// The per-row server-identity column.
    pub fn servers(&self) -> &[ServerId] {
        &self.server
    }

    /// The per-row pool-identity column.
    pub fn pools(&self) -> &[PoolId] {
        &self.pool
    }

    /// Whether row `i` served traffic this window.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn is_online(&self, i: usize) -> bool {
        assert!(i < self.len(), "row {i} out of bounds ({} rows)", self.len());
        self.online[i / 64] >> (i % 64) & 1 == 1
    }

    /// Serving-server count over rows `start..start + len` — a masked
    /// popcount over the packed bitmask.
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the held rows.
    pub fn online_count(&self, start: usize, len: usize) -> usize {
        assert!(start + len <= self.len(), "range {start}+{len} exceeds {} rows", self.len());
        if len == 0 {
            return 0;
        }
        let (first, last) = (start / 64, (start + len - 1) / 64);
        let lead_mask = u64::MAX << (start % 64);
        let tail_mask = u64::MAX >> (63 - (start + len - 1) % 64);
        if first == last {
            return (self.online[first] & lead_mask & tail_mask).count_ones() as usize;
        }
        let mut n = (self.online[first] & lead_mask).count_ones() as usize;
        for word in &self.online[first + 1..last] {
            n += word.count_ones() as usize;
        }
        n + (self.online[last] & tail_mask).count_ones() as usize
    }

    /// Resizes every column to `n` rows (identity columns keep their
    /// values; callers overwrite them). Reuses existing capacity.
    pub(crate) fn resize(&mut self, n: usize) {
        self.server.resize(n, ServerId(0));
        self.pool.resize(n, PoolId(0));
        self.datacenter.resize(n, DatacenterId(0));
        self.online.clear();
        self.online.resize(n.div_ceil(64), 0);
        self.rps.resize(n, 0.0);
        self.cpu_pct.resize(n, 0.0);
        self.latency_p95_ms.resize(n, 0.0);
        self.disk_queue.resize(n, 0.0);
        self.memory_pages_per_sec.resize(n, 0.0);
        self.network_mbps.resize(n, 0.0);
    }

    /// Sets row `i`'s online bit. The row's metric values are the caller's
    /// responsibility (offline rows must carry `+0.0`).
    pub(crate) fn set_online(&mut self, i: usize, online: bool) {
        let (word, bit) = (i / 64, i % 64);
        if online {
            self.online[word] |= 1 << bit;
        } else {
            self.online[word] &= !(1 << bit);
        }
    }

    /// Zeroes every metric column (not RPS — offline RPS is written as 0
    /// directly, and `AvailabilityOnly` keeps the routed share) for rows
    /// `start..start + len` whose online bit is clear, restoring the
    /// offline contract after an unconditional kernel pass.
    pub(crate) fn zero_offline(&mut self, start: usize, len: usize) {
        for i in start..start + len {
            if self.online[i / 64] >> (i % 64) & 1 == 0 {
                self.cpu_pct[i] = 0.0;
                self.latency_p95_ms[i] = 0.0;
                self.disk_queue[i] = 0.0;
                self.memory_pages_per_sec[i] = 0.0;
                self.network_mbps[i] = 0.0;
            }
        }
    }

    /// The row-struct view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn row(&self, i: usize) -> SnapshotRow {
        SnapshotRow {
            server: self.server[i],
            pool: self.pool[i],
            datacenter: self.datacenter[i],
            online: self.is_online(i),
            rps: self.rps[i],
            cpu_pct: self.cpu_pct[i],
            latency_p95_ms: self.latency_p95_ms[i],
            disk_queue: self.disk_queue[i],
            memory_pages_per_sec: self.memory_pages_per_sec[i],
            network_mbps: self.network_mbps[i],
        }
    }

    /// Converts to row structs, appending to `out` (cleared first).
    pub fn to_rows(&self, out: &mut Vec<SnapshotRow>) {
        out.clear();
        out.reserve(self.len());
        out.extend((0..self.len()).map(|i| self.row(i)));
    }

    /// Builds columns from row structs — the inverse of
    /// [`SnapshotColumns::to_rows`] for any rows honouring the offline
    /// contract (offline rows zero-metric'd, as every simulator path
    /// produces them).
    pub fn from_rows(rows: &[SnapshotRow]) -> Self {
        let mut cols = SnapshotColumns::new();
        cols.resize(rows.len());
        for (i, r) in rows.iter().enumerate() {
            cols.server[i] = r.server;
            cols.pool[i] = r.pool;
            cols.datacenter[i] = r.datacenter;
            cols.set_online(i, r.online);
            cols.rps[i] = r.rps;
            cols.cpu_pct[i] = r.cpu_pct;
            cols.latency_p95_ms[i] = r.latency_p95_ms;
            cols.disk_queue[i] = r.disk_queue;
            cols.memory_pages_per_sec[i] = r.memory_pages_per_sec;
            cols.network_mbps[i] = r.network_mbps;
        }
        cols
    }
}

/// A columnar window snapshot plus its pool partition — the
/// struct-of-arrays counterpart of [`crate::sim::PartitionedSnapshot`],
/// produced by [`crate::sim::Simulation::step_columns_partitioned`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnarSnapshot<'a> {
    /// The window just simulated.
    pub window: WindowIndex,
    /// The fleet's column buffers for this window.
    pub columns: &'a SnapshotColumns,
    /// One entry per pool, delimiting its rows; identical geometry to the
    /// row path's partition.
    pub pools: &'a [PoolSlice],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<SnapshotRow> {
        (0..130u32)
            .map(|i| {
                let online = i % 7 != 3;
                let v = if online { 1.0 + i as f64 } else { 0.0 };
                SnapshotRow {
                    server: ServerId(i),
                    pool: PoolId(i / 10),
                    datacenter: DatacenterId((i % 3) as u16),
                    online,
                    rps: v * 2.0,
                    cpu_pct: v * 0.5,
                    latency_p95_ms: v + 30.0 * (online as u8 as f64),
                    disk_queue: v * 0.1,
                    memory_pages_per_sec: v * 40.0,
                    network_mbps: v * 0.3,
                }
            })
            .collect()
    }

    #[test]
    fn row_round_trip_is_lossless() {
        let rows = sample_rows();
        let cols = SnapshotColumns::from_rows(&rows);
        assert_eq!(cols.len(), rows.len());
        let mut back = Vec::new();
        cols.to_rows(&mut back);
        assert_eq!(back, rows);
        // Single-row accessor agrees with the bulk conversion.
        assert_eq!(cols.row(17), rows[17]);
    }

    #[test]
    fn online_count_matches_rows_at_word_boundaries() {
        let rows = sample_rows();
        let cols = SnapshotColumns::from_rows(&rows);
        // Ranges straddling 64-bit word boundaries, single-word ranges,
        // empty ranges.
        for (start, len) in [(0, 130), (0, 64), (63, 2), (60, 70), (64, 64), (100, 0), (129, 1)] {
            let expect = rows[start..start + len].iter().filter(|r| r.online).count();
            assert_eq!(cols.online_count(start, len), expect, "range {start}+{len}");
        }
    }

    #[test]
    fn online_bits_round_trip() {
        let rows = sample_rows();
        let cols = SnapshotColumns::from_rows(&rows);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(cols.is_online(i), r.online, "row {i}");
        }
    }

    #[test]
    fn resize_reuses_and_clears_bits() {
        let mut cols = SnapshotColumns::from_rows(&sample_rows());
        cols.resize(130);
        assert!(
            (0..130).all(|i| !cols.is_online(i)),
            "resize clears the bitmask for the next window"
        );
        assert_eq!(cols.len(), 130);
    }

    #[test]
    fn zero_offline_restores_contract() {
        let rows = sample_rows();
        let mut cols = SnapshotColumns::from_rows(&rows);
        // Scribble over offline rows as an unconditional kernel pass would.
        for i in 0..cols.len() {
            if !cols.is_online(i) {
                cols.cpu_pct[i] = 42.0;
                cols.latency_p95_ms[i] = 42.0;
                cols.disk_queue[i] = 42.0;
                cols.memory_pages_per_sec[i] = 42.0;
                cols.network_mbps[i] = 42.0;
            }
        }
        cols.zero_offline(0, 130);
        let mut back = Vec::new();
        cols.to_rows(&mut back);
        assert_eq!(back, rows, "offline rows zeroed back to the row-path shape");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn is_online_bounds_checked() {
        let cols = SnapshotColumns::from_rows(&sample_rows());
        cols.is_online(130);
    }
}
