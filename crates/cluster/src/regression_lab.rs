//! Twin-pool A/B harness for offline regression analysis (steps 3–4).
//!
//! §II-D: "Our system uses two server pools of the same size and hardware,
//! one running with the change and the other without. We precisely generate
//! identical workloads to each pool enabling us to detect changes with high
//! confidence and precision. We make small workload increments over time…"
//!
//! The lab drives two offline pools with a [`SteppedLoad`] ramp and returns
//! per-step measurements for both; [`headroom_core`]'s offline analysis then
//! decides whether the change regressed capacity or QoS (Fig. 16).
//!
//! [`headroom_core`]: https://docs.rs/headroom-core

use headroom_workload::stepped::SteppedLoad;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hardware::HardwareGeneration;
use crate::pool::LoadBalancer;
use crate::service_model::ServiceModel;
use headroom_telemetry::time::WindowIndex;

/// Measurements for one load step on one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct StepMeasurement {
    /// Offered RPS per server at this step.
    pub rps_per_server: f64,
    /// Per-window pool-average p95 latency samples (one per window held).
    pub latency_p95_ms: Vec<f64>,
    /// Per-window pool-average CPU percent samples.
    pub cpu_pct: Vec<f64>,
    /// Pool-average resident memory at the end of the step (MB).
    pub memory_mb: f64,
}

impl StepMeasurement {
    /// Mean of the latency samples.
    pub fn mean_latency(&self) -> f64 {
        mean(&self.latency_p95_ms)
    }

    /// Mean of the CPU samples.
    pub fn mean_cpu(&self) -> f64 {
        mean(&self.cpu_pct)
    }

    /// Five-number summary of the latency samples `(min, q1, median, q3,
    /// max)` — the Fig. 16 box-plot format.
    pub fn latency_box(&self) -> (f64, f64, f64, f64, f64) {
        let mut sorted = self.latency_p95_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
        let p = |q: f64| headroom_stats::percentile::percentile_of_sorted(&sorted, q);
        (p(0.0), p(25.0), p(50.0), p(75.0), p(100.0))
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Result of an A/B run: per-step measurements for both pools.
#[derive(Debug, Clone, PartialEq)]
pub struct AbRunResult {
    /// The unchanged pool.
    pub baseline: Vec<StepMeasurement>,
    /// The pool running the change.
    pub candidate: Vec<StepMeasurement>,
    /// The ramp that was applied (identical for both pools).
    pub ramp: SteppedLoad,
}

/// Twin-pool offline experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionLab {
    /// Model of the current production build.
    pub baseline: ServiceModel,
    /// Model of the proposed change.
    pub candidate: ServiceModel,
    /// Servers in each offline pool.
    pub pool_size: usize,
    /// Hardware of both pools (identical, per the methodology).
    pub generation: HardwareGeneration,
    /// The stepped load applied to both pools.
    pub ramp: SteppedLoad,
    /// Seed for the (identical) workload generation.
    pub seed: u64,
}

impl RegressionLab {
    /// Creates a lab with a 10-server pool on Gen1 hardware.
    pub fn new(
        baseline: ServiceModel,
        candidate: ServiceModel,
        ramp: SteppedLoad,
        seed: u64,
    ) -> Self {
        RegressionLab {
            baseline,
            candidate,
            pool_size: 10,
            generation: HardwareGeneration::Gen1,
            ramp,
            seed,
        }
    }

    /// Runs both pools under the identical ramp.
    ///
    /// Both pools see the same per-window total workload and the same
    /// load-balancer jitter sequence; only the service model differs.
    pub fn run(&self) -> AbRunResult {
        let baseline = self.run_pool(&self.baseline);
        let candidate = self.run_pool(&self.candidate);
        AbRunResult { baseline, candidate, ramp: self.ramp }
    }

    fn run_pool(&self, model: &ServiceModel) -> Vec<StepMeasurement> {
        let lb = LoadBalancer::default();
        // Fresh RNG per pool: identical workload/jitter streams for both.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut windows_online = vec![0u64; self.pool_size];
        let mut results = Vec::with_capacity(self.ramp.steps);
        let mut window = 0u64;
        for step in 0..self.ramp.steps {
            let rps_per_server = self.ramp.rps_at_step(step);
            let total = rps_per_server * self.pool_size as f64;
            let mut latencies = Vec::with_capacity(self.ramp.windows_per_step);
            let mut cpus = Vec::with_capacity(self.ramp.windows_per_step);
            let mut memory = 0.0;
            for _ in 0..self.ramp.windows_per_step {
                let shares = lb.distribute(total, self.pool_size, &mut rng);
                let mut lat_sum = 0.0;
                let mut cpu_sum = 0.0;
                let mut mem_sum = 0.0;
                for (i, &share) in shares.iter().enumerate() {
                    let m = model.window_metrics(
                        share,
                        self.generation,
                        WindowIndex(window),
                        windows_online[i],
                        i as u64,
                        1.0,
                        &mut rng,
                    );
                    lat_sum += m.latency_p95_ms;
                    cpu_sum += m.cpu_pct;
                    mem_sum += m.memory_resident_mb;
                    windows_online[i] += 1;
                }
                latencies.push(lat_sum / self.pool_size as f64);
                cpus.push(cpu_sum / self.pool_size as f64);
                memory = mem_sum / self.pool_size as f64;
                window += 1;
            }
            results.push(StepMeasurement {
                rps_per_server,
                latency_p95_ms: latencies,
                cpu_pct: cpus,
                memory_mb: memory,
            });
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> SteppedLoad {
        SteppedLoad::new(50.0, 50.0, 6, 8)
    }

    #[test]
    fn identical_models_identical_results() {
        let m = ServiceModel::paper_pool_b();
        let lab = RegressionLab::new(m.clone(), m, ramp(), 5);
        let result = lab.run();
        assert_eq!(result.baseline, result.candidate);
    }

    #[test]
    fn leak_fix_shows_in_memory() {
        let leaky = ServiceModel::paper_pool_b().with_leak(3.0);
        let fixed = ServiceModel::paper_pool_b();
        let lab = RegressionLab::new(leaky, fixed, ramp(), 5);
        let result = lab.run();
        let base_mem = result.baseline.last().unwrap().memory_mb;
        let cand_mem = result.candidate.last().unwrap().memory_mb;
        assert!(base_mem > cand_mem + 100.0, "leak visible: {base_mem} vs {cand_mem}");
    }

    #[test]
    fn latency_regression_shows_at_high_load_only() {
        // The Fig. 16 defect: fine at low load, much worse at high load.
        let baseline = ServiceModel::paper_pool_b();
        let regressed = ServiceModel::paper_pool_b().with_latency_quadratic_scaled(6.0);
        let lab = RegressionLab::new(baseline, regressed, ramp(), 7);
        let result = lab.run();
        let low_delta = result.candidate[0].mean_latency() - result.baseline[0].mean_latency();
        let high_delta = result.candidate.last().unwrap().mean_latency()
            - result.baseline.last().unwrap().mean_latency();
        assert!(low_delta < 2.0, "low-load delta {low_delta}");
        assert!(high_delta > 5.0, "high-load delta {high_delta}");
    }

    #[test]
    fn latency_box_is_ordered() {
        let m = ServiceModel::paper_pool_d();
        let lab = RegressionLab::new(m.clone(), m, ramp(), 2);
        let result = lab.run();
        for step in &result.baseline {
            let (min, q1, med, q3, max) = step.latency_box();
            assert!(min <= q1 && q1 <= med && med <= q3 && q3 <= max);
        }
    }

    #[test]
    fn steps_match_ramp() {
        let m = ServiceModel::paper_pool_d();
        let lab = RegressionLab::new(m.clone(), m, ramp(), 2);
        let result = lab.run();
        assert_eq!(result.baseline.len(), 6);
        assert_eq!(result.baseline[0].rps_per_server, 50.0);
        assert_eq!(result.baseline[5].rps_per_server, 300.0);
        assert_eq!(result.baseline[0].latency_p95_ms.len(), 8);
    }
}
