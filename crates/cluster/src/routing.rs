//! Geo demand routing with failover.
//!
//! Each pool normally serves its own region's demand. When a datacenter is
//! lost (an [`EventEffect::DatacenterLoss`]), the global traffic manager
//! reroutes that region's demand onto the service's surviving pools,
//! proportionally to their datacenter weights — which is precisely how the
//! paper's natural experiments produced "a median 56% increase in workload
//! volume … with one datacenter receiving an increase of 127%" (Fig. 4).
//!
//! [`EventEffect::DatacenterLoss`]: headroom_workload::events::EventEffect

use headroom_telemetry::ids::DatacenterId;

/// Redistributes demand away from lost datacenters.
///
/// `demands[i]` is the demand a service's pool in datacenter `i` would
/// receive this window; `lost[i]` marks failed datacenters; `weights[i]` is
/// each datacenter's routing weight. Lost datacenters end up with zero
/// demand; their displaced demand lands on survivors in proportion to
/// weight.
///
/// When *all* datacenters are lost, demand is simply dropped (global
/// outage).
///
/// # Panics
///
/// Panics when the three slices have different lengths.
pub fn redistribute(demands: &mut [f64], lost: &[bool], weights: &[f64]) {
    assert_eq!(demands.len(), lost.len(), "demands/lost length mismatch");
    assert_eq!(demands.len(), weights.len(), "demands/weights length mismatch");
    let displaced: f64 = demands.iter().zip(lost).filter(|(_, &l)| l).map(|(d, _)| *d).sum();
    if displaced == 0.0 && !lost.iter().any(|&l| l) {
        return;
    }
    let surviving_weight: f64 =
        weights.iter().zip(lost).filter(|(_, &l)| !l).map(|(w, _)| *w).sum();
    for (d, &l) in demands.iter_mut().zip(lost) {
        if l {
            *d = 0.0;
        }
    }
    if surviving_weight <= 0.0 {
        return; // total outage: demand dropped
    }
    for ((d, &l), &w) in demands.iter_mut().zip(lost).zip(weights) {
        if !l {
            *d += displaced * w / surviving_weight;
        }
    }
}

/// Convenience: maps datacenter ids to their index in a weight table.
pub fn dc_index(id: DatacenterId) -> usize {
    id.0 as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_is_identity() {
        let mut d = vec![100.0, 200.0];
        redistribute(&mut d, &[false, false], &[1.0, 1.0]);
        assert_eq!(d, vec![100.0, 200.0]);
    }

    #[test]
    fn single_loss_moves_demand() {
        let mut d = vec![300.0, 200.0, 100.0];
        redistribute(&mut d, &[true, false, false], &[1.0, 1.0, 1.0]);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 350.0);
        assert_eq!(d[2], 250.0);
        // Total preserved.
        assert_eq!(d.iter().sum::<f64>(), 600.0);
    }

    #[test]
    fn weights_shape_the_redistribution() {
        let mut d = vec![100.0, 100.0, 100.0];
        redistribute(&mut d, &[true, false, false], &[1.0, 3.0, 1.0]);
        assert_eq!(d[1], 175.0);
        assert_eq!(d[2], 125.0);
    }

    #[test]
    fn uneven_surge_across_survivors() {
        // DCs at different points in their diurnal cycle: the trough DC gets
        // the largest *relative* surge — the +127% outlier of Fig. 4.
        let mut d = vec![500.0, 400.0, 120.0];
        let before = d.clone();
        redistribute(&mut d, &[true, false, false], &[1.0, 0.9, 0.9]);
        let surge1 = d[1] / before[1] - 1.0;
        let surge2 = d[2] / before[2] - 1.0;
        assert!(surge2 > 2.0 * surge1, "trough DC surges harder: {surge1:.2} vs {surge2:.2}");
    }

    #[test]
    fn total_outage_drops_demand() {
        let mut d = vec![10.0, 20.0];
        redistribute(&mut d, &[true, true], &[1.0, 1.0]);
        assert_eq!(d, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut d = vec![1.0];
        redistribute(&mut d, &[true, false], &[1.0, 1.0]);
    }
}
