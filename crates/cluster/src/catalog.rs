//! The micro-service catalog.
//!
//! Table I of the paper describes seven micro-services (A–G); Fig. 15 adds
//! pool H and Fig. 3 pool I. Each service here carries a tuned black-box
//! [`ServiceModel`], a deployment shape (servers per pool, peak load), a
//! maintenance practice, and a latency SLO — everything the simulator needs
//! to reproduce the per-pool behaviours the evaluation reports (Table IV's
//! savings spread, pool C's 90% availability, pool I's hardware bimodality).

use std::fmt;

use crate::hardware::HardwareGeneration;
use crate::maintenance::AvailabilityPractice;
use crate::service_model::{LogUploadSpec, ServiceModel, TableWorkload};

/// The micro-services of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum MicroserviceKind {
    /// In-memory storage, similar to MemCached (two tables).
    A,
    /// Modifies incoming requests, e.g. spelling corrections.
    B,
    /// Orchestrates a workflow of stateless processing modules.
    C,
    /// Converts responses from data to formatted web pages.
    D,
    /// Split-TCP proxy, CDN, load balancer and authentication service.
    E,
    /// In-memory storage with custom processing logic.
    F,
    /// High-volume, low-latency metrics collection system.
    G,
    /// Auxiliary storage replication service (well-managed rollouts;
    /// the pool H of Fig. 15).
    H,
    /// Legacy in-memory index spanning two hardware generations (the
    /// pool I of Fig. 3).
    I,
}

impl MicroserviceKind {
    /// The seven Table I services.
    pub const TABLE1: [MicroserviceKind; 7] = [
        MicroserviceKind::A,
        MicroserviceKind::B,
        MicroserviceKind::C,
        MicroserviceKind::D,
        MicroserviceKind::E,
        MicroserviceKind::F,
        MicroserviceKind::G,
    ];

    /// Every catalogued service.
    pub const ALL: [MicroserviceKind; 9] = [
        MicroserviceKind::A,
        MicroserviceKind::B,
        MicroserviceKind::C,
        MicroserviceKind::D,
        MicroserviceKind::E,
        MicroserviceKind::F,
        MicroserviceKind::G,
        MicroserviceKind::H,
        MicroserviceKind::I,
    ];

    /// Table I description.
    pub fn description(&self) -> &'static str {
        match self {
            MicroserviceKind::A => "In-Memory Storage (similar to MemCached)",
            MicroserviceKind::B => "Modifies incoming requests such as spelling corrections",
            MicroserviceKind::C => "Orchestrates a workflow of stateless processing modules",
            MicroserviceKind::D => "Converts responses from data to formatted web pages",
            MicroserviceKind::E => {
                "Split-TCP proxy, CDN, load balancer, and authentication service"
            }
            MicroserviceKind::G => {
                "High volume, low latency, metrics collection system for automated decisions"
            }
            MicroserviceKind::F => "In-Memory storage with custom processing logic",
            MicroserviceKind::H => "Auxiliary storage replication service",
            MicroserviceKind::I => "Legacy in-memory index on mixed hardware generations",
        }
    }

    /// The deployment/tuning spec for this service.
    pub fn spec(&self) -> ServiceSpec {
        match self {
            MicroserviceKind::A => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.05, 1.5, [12.0, -0.02, 6.0e-4])
                    .with_queue_capacity(1_700.0)
                    .with_tables(vec![
                        TableWorkload { share: 0.65, cpu_per_rps: 0.025, share_jitter: 0.35 },
                        TableWorkload { share: 0.35, cpu_per_rps: 0.110, share_jitter: 0.35 },
                    ]),
                servers_per_pool: 120,
                peak_rps_per_server: 200.0,
                practice: AvailabilityPractice::Standard,
                latency_slo_ms: 27.0,
                hardware_mix: vec![(HardwareGeneration::Gen2, 1.0)],
            },
            MicroserviceKind::B => ServiceSpec {
                kind: *self,
                model: ServiceModel::paper_pool_b(),
                servers_per_pool: 80,
                peak_rps_per_server: 380.0,
                practice: AvailabilityPractice::Repurposed,
                latency_slo_ms: 32.5,
                hardware_mix: vec![(HardwareGeneration::Gen1, 1.0)],
            },
            MicroserviceKind::C => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.09, 2.0, [30.0, 0.0, 3.9e-3])
                    .with_queue_capacity(950.0)
                    .with_log_upload(LogUploadSpec {
                        period_windows: 60,
                        duration_windows: 5,
                        cpu_pct: 22.0,
                        disk_write_bytes_per_sec: 4.0e8,
                    }),
                servers_per_pool: 100,
                peak_rps_per_server: 150.0,
                practice: AvailabilityPractice::Heavy,
                latency_slo_ms: 125.6,
                hardware_mix: vec![(HardwareGeneration::Gen1, 1.0)],
            },
            MicroserviceKind::D => ServiceSpec {
                kind: *self,
                model: ServiceModel::paper_pool_d(),
                servers_per_pool: 90,
                peak_rps_per_server: 80.0,
                practice: AvailabilityPractice::WellManaged,
                latency_slo_ms: 58.0,
                hardware_mix: vec![(HardwareGeneration::Gen1, 1.0)],
            },
            MicroserviceKind::E => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.03, 1.2, [14.0, -0.02, 5.0e-5])
                    .with_queue_capacity(2_900.0),
                servers_per_pool: 60,
                peak_rps_per_server: 300.0,
                practice: AvailabilityPractice::Moderate,
                latency_slo_ms: 13.1,
                hardware_mix: vec![(HardwareGeneration::Gen2, 1.0)],
            },
            MicroserviceKind::F => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.045, 1.5, [20.0, -0.03, 1.0e-4])
                    .with_queue_capacity(1_900.0),
                servers_per_pool: 70,
                peak_rps_per_server: 250.0,
                practice: AvailabilityPractice::WellManaged,
                latency_slo_ms: 19.7,
                hardware_mix: vec![(HardwareGeneration::Gen2, 1.0)],
            },
            MicroserviceKind::G => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.02, 1.0, [6.0, 0.0, 2.2e-5])
                    .with_queue_capacity(4_400.0),
                servers_per_pool: 50,
                peak_rps_per_server: 500.0,
                practice: AvailabilityPractice::WellManaged,
                latency_slo_ms: 8.0,
                hardware_mix: vec![(HardwareGeneration::Gen3, 1.0)],
            },
            MicroserviceKind::H => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.06, 1.8, [18.0, -0.01, 2.0e-4])
                    .with_queue_capacity(1_450.0),
                servers_per_pool: 40,
                peak_rps_per_server: 160.0,
                practice: AvailabilityPractice::WellManaged,
                latency_slo_ms: 26.0,
                hardware_mix: vec![(HardwareGeneration::Gen1, 1.0)],
            },
            MicroserviceKind::I => ServiceSpec {
                kind: *self,
                model: ServiceModel::new(0.055, 1.6, [16.0, -0.015, 1.5e-4])
                    .with_queue_capacity(1_600.0),
                servers_per_pool: 60,
                peak_rps_per_server: 180.0,
                practice: AvailabilityPractice::Relaxed,
                latency_slo_ms: 24.0,
                hardware_mix: vec![
                    (HardwareGeneration::Gen1, 0.6),
                    (HardwareGeneration::Gen3, 0.4),
                ],
            },
        }
    }
}

impl fmt::Display for MicroserviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = match self {
            MicroserviceKind::A => "A",
            MicroserviceKind::B => "B",
            MicroserviceKind::C => "C",
            MicroserviceKind::D => "D",
            MicroserviceKind::E => "E",
            MicroserviceKind::F => "F",
            MicroserviceKind::G => "G",
            MicroserviceKind::H => "H",
            MicroserviceKind::I => "I",
        };
        f.write_str(letter)
    }
}

/// Deployment and tuning parameters for one micro-service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Which service this is.
    pub kind: MicroserviceKind,
    /// Black-box response model.
    pub model: ServiceModel,
    /// Servers per pool (per datacenter) at paper scale.
    pub servers_per_pool: usize,
    /// Peak-hour RPS per server at the current allocation — the amount of
    /// headroom baked in by the service owners.
    pub peak_rps_per_server: f64,
    /// Maintenance practice (drives pool availability).
    pub practice: AvailabilityPractice,
    /// The business latency SLO (p95, ms) for this service.
    pub latency_slo_ms: f64,
    /// Hardware generations and their fractions (must sum to ~1).
    pub hardware_mix: Vec<(HardwareGeneration, f64)>,
}

impl ServiceSpec {
    /// Overrides the maintenance practice (e.g. clean pools for controlled
    /// experiments).
    pub fn with_practice(mut self, practice: AvailabilityPractice) -> Self {
        self.practice = practice;
        self
    }

    /// Overrides the peak workload per server (headroom level).
    pub fn with_peak_rps_per_server(mut self, rps: f64) -> Self {
        assert!(rps > 0.0 && rps.is_finite(), "peak rps must be positive");
        self.peak_rps_per_server = rps;
        self
    }

    /// Assigns a hardware generation to server `index` of `pool_size`,
    /// deterministically honouring the mix fractions (first fraction of the
    /// index range gets the first generation, and so on).
    pub fn generation_for(&self, index: usize, pool_size: usize) -> HardwareGeneration {
        if pool_size == 0 || self.hardware_mix.is_empty() {
            return HardwareGeneration::Gen1;
        }
        let frac = index as f64 / pool_size as f64;
        let mut cum = 0.0;
        for &(gen, share) in &self.hardware_mix {
            cum += share;
            if frac < cum {
                return gen;
            }
        }
        self.hardware_mix.last().map(|&(g, _)| g).unwrap_or(HardwareGeneration::Gen1)
    }

    /// Peak total demand of one pool (RPS).
    pub fn peak_pool_demand(&self) -> f64 {
        self.peak_rps_per_server * self.servers_per_pool as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_services() {
        assert_eq!(MicroserviceKind::TABLE1.len(), 7);
        for k in MicroserviceKind::TABLE1 {
            assert!(!k.description().is_empty());
        }
    }

    #[test]
    fn display_letters() {
        assert_eq!(MicroserviceKind::A.to_string(), "A");
        assert_eq!(MicroserviceKind::I.to_string(), "I");
    }

    #[test]
    fn specs_are_self_consistent() {
        for kind in MicroserviceKind::ALL {
            let spec = kind.spec();
            assert_eq!(spec.kind, kind);
            assert!(spec.servers_per_pool > 0);
            assert!(spec.peak_rps_per_server > 0.0);
            assert!(spec.latency_slo_ms > 0.0);
            let mix_sum: f64 = spec.hardware_mix.iter().map(|(_, f)| f).sum();
            assert!((mix_sum - 1.0).abs() < 1e-9, "mix of {kind} sums to {mix_sum}");
            // The SLO must be reachable: latency at peak must be below it.
            let gen = spec.hardware_mix[0].0;
            let at_peak = spec.model.latency_p95_mean(spec.peak_rps_per_server, gen);
            assert!(
                at_peak < spec.latency_slo_ms,
                "{kind}: latency at peak {at_peak} exceeds SLO {}",
                spec.latency_slo_ms
            );
        }
    }

    #[test]
    fn b_and_d_use_paper_models() {
        let b = MicroserviceKind::B.spec();
        assert_eq!(b.model.cpu_per_rps, 0.028);
        let d = MicroserviceKind::D.spec();
        assert_eq!(d.model.cpu_per_rps, 0.0916);
    }

    #[test]
    fn pool_i_has_mixed_hardware() {
        let spec = MicroserviceKind::I.spec();
        assert_eq!(spec.hardware_mix.len(), 2);
        assert_eq!(spec.generation_for(0, 100), HardwareGeneration::Gen1);
        assert_eq!(spec.generation_for(99, 100), HardwareGeneration::Gen3);
        // 60/40 split.
        let gen3 =
            (0..100).filter(|&i| spec.generation_for(i, 100) == HardwareGeneration::Gen3).count();
        assert_eq!(gen3, 40);
    }

    #[test]
    fn service_a_has_two_tables() {
        let spec = MicroserviceKind::A.spec();
        assert_eq!(spec.model.tables.len(), 2);
    }

    #[test]
    fn pool_c_runs_background_uploads() {
        let spec = MicroserviceKind::C.spec();
        assert!(spec.model.log_upload.is_some());
    }

    #[test]
    fn peak_pool_demand() {
        let spec = MicroserviceKind::B.spec();
        assert_eq!(spec.peak_pool_demand(), 380.0 * 80.0);
    }

    #[test]
    fn availability_practices_match_paper_pools() {
        assert_eq!(MicroserviceKind::C.spec().practice, AvailabilityPractice::Heavy);
        assert_eq!(MicroserviceKind::D.spec().practice, AvailabilityPractice::WellManaged);
        assert_eq!(MicroserviceKind::H.spec().practice, AvailabilityPractice::WellManaged);
        assert_eq!(MicroserviceKind::B.spec().practice, AvailabilityPractice::Repurposed);
    }
}
