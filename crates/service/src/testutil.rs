//! Shared synthetic-drive helpers for the service tests: a small
//! multi-pool fleet on the service-B response curves, driven by
//! phase-shifted |sin| workloads so per-pool targets move (and dwell
//! countdowns start) at different windows.

use std::f64::consts::PI;

use headroom_core::slo::QosRequirement;
use headroom_online::planner::{OnlinePlannerConfig, PoolWindowAggregate, ResizeRecommendation};
use headroom_online::sweep::SweepEngine;
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

/// Pools in the synthetic fleet.
pub const POOLS: u32 = 5;

/// The service-B QoS used throughout the workspace's tests.
pub fn b_qos() -> QosRequirement {
    QosRequirement::latency(32.5).with_cpu_ceiling(90.0)
}

/// A config that warms up fast (12 windows) on a short (24-window) ring.
/// The ring is much shorter than the drive's 160-window |sin| period on
/// purpose: the trailing peak rises and falls as the window slides, so
/// targets keep moving and recommendations keep flowing mid-run.
pub fn test_config(dwell_windows: u64) -> OnlinePlannerConfig {
    OnlinePlannerConfig {
        window_capacity: 24,
        min_fit_windows: 12,
        dwell_windows,
        ..OnlinePlannerConfig::default()
    }
}

/// A fresh engine under [`b_qos`].
pub fn engine(config: OnlinePlannerConfig) -> SweepEngine {
    SweepEngine::new(config, b_qos())
}

/// One synthetic window for one pool.
pub fn aggregate(w: u64, p: u32) -> PoolWindowAggregate {
    let rps = 200.0 + 150.0 * ((((w + 20 * u64::from(p)) as f64 / 80.0) * PI).sin()).abs();
    PoolWindowAggregate {
        window: WindowIndex(w),
        rps_per_server: rps,
        cpu_pct: 0.028 * rps + 1.37,
        latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
        disk_queue: 1.0,
        memory_pages_per_sec: 4000.0,
        network_mbps: 0.32 * rps,
        active_servers: 8 + (p % 3) as usize,
    }
}

/// All pools' aggregates for window `w`, in pool order.
pub fn window_aggregates(w: u64) -> Vec<(PoolId, PoolWindowAggregate)> {
    (0..POOLS).map(|p| (PoolId(p), aggregate(w, p))).collect()
}

/// Feeds one synthetic window (all pools) without draining.
pub fn feed_window(engine: &mut SweepEngine, w: u64) {
    engine.observe_aggregates(WindowIndex(w), &window_aggregates(w));
}

/// Drives windows `[from, to)`, draining after each; returns every
/// recommendation emitted, in order.
pub fn drive(engine: &mut SweepEngine, from: u64, to: u64) -> Vec<ResizeRecommendation> {
    let mut out = Vec::new();
    for w in from..to {
        feed_window(engine, w);
        out.extend(engine.drain_recommendations());
    }
    out
}
