//! Versioned, checksummed planner checkpoints.
//!
//! A checkpoint is the [`headroom_stats::Persist`] encoding of a
//! [`SweepEngine`] wrapped in a small self-describing frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HRCP"
//! 4       4     format version, u32 LE (currently 3)
//! 8       8     FNV-1a 64 checksum of the payload, u64 LE
//! 16      8     payload length in bytes, u64 LE
//! 24      n     payload: SweepEngine::persist
//! ```
//!
//! The frame is what makes the bytes safe to park on disk: a reader can
//! reject a foreign file (magic), a future format it does not understand
//! (version), a torn or bit-flipped write (checksum, length), and junk
//! appended by a concatenating copy (trailing bytes) — all *before* the
//! payload decoder runs. The payload itself is the engine's logical state
//! only; worker threads and scratch buffers are rebuilt lazily on the first
//! sweep after [`load`], which is why a checkpoint taken at `threads = 8`
//! restores bit-identically at `threads = 1` (or under the other
//! [`headroom_online::SweepExec`] mode).

use headroom_online::sweep::SweepEngine;
use headroom_stats::persist::{fnv1a64, Persist, PersistError, Reader, Writer};

/// First four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"HRCP";

/// Current checkpoint format version. Bumped whenever the payload encoding
/// changes shape (v3: `StreamingLinReg` moved from centered moments to
/// shift-pinned power sums, changing its persisted fields); [`load`]
/// refuses versions it does not know rather than guessing.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Bytes of frame before the payload: magic + version + checksum + length.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with [`CHECKPOINT_MAGIC`] — not a
    /// checkpoint at all.
    BadMagic,
    /// The frame declares a format version this build cannot decode.
    UnsupportedVersion(u32),
    /// The buffer ends before the declared payload does (torn write).
    Truncated {
        /// Bytes the frame declared.
        declared: usize,
        /// Bytes actually present after the header.
        available: usize,
    },
    /// The payload's FNV-1a 64 checksum does not match the frame's.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// Extra bytes follow the declared payload.
    TrailingBytes(usize),
    /// The frame was intact but the payload failed to decode.
    Codec(PersistError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => f.write_str("not a checkpoint: bad magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Truncated { declared, available } => {
                write!(f, "truncated checkpoint: frame declares {declared} payload bytes, {available} present")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => {
                write!(f, "checkpoint checksum mismatch: frame says {expected:#018x}, payload hashes to {actual:#018x}")
            }
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after checkpoint payload")
            }
            CheckpointError::Codec(e) => write!(f, "checkpoint payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> Self {
        CheckpointError::Codec(e)
    }
}

/// Wraps an already-encoded payload in the checkpoint frame. Shared with
/// the event log, which uses the same frame under its own magic/version.
pub(crate) fn frame(magic: [u8; 4], version: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validates a frame and returns the payload slice. `versions` is the set
/// the caller can decode (currently always a single element).
pub(crate) fn unframe<'a>(
    magic: [u8; 4],
    versions: &[u32],
    bytes: &'a [u8],
) -> Result<&'a [u8], CheckpointError> {
    if bytes.len() < 4 || bytes[..4] != magic {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated { declared: HEADER_LEN, available: bytes.len() });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if !versions.contains(&version) {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let expected = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let declared = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let declared = usize::try_from(declared).map_err(|_| CheckpointError::Truncated {
        declared: usize::MAX,
        available: bytes.len() - HEADER_LEN,
    })?;
    let body = &bytes[HEADER_LEN..];
    if body.len() < declared {
        return Err(CheckpointError::Truncated { declared, available: body.len() });
    }
    if body.len() > declared {
        return Err(CheckpointError::TrailingBytes(body.len() - declared));
    }
    let actual = fnv1a64(body);
    if actual != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, actual });
    }
    Ok(body)
}

/// Serializes the engine's full logical state into a framed checkpoint.
pub fn save(engine: &SweepEngine) -> Vec<u8> {
    let mut w = Writer::new();
    engine.persist(&mut w);
    frame(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, w.into_bytes())
}

/// Decodes a checkpoint produced by [`save`] back into a ready-to-run
/// engine.
///
/// The restored engine is *logically* identical to the one that was saved:
/// fed the same subsequent windows, it emits byte-identical
/// recommendations, regardless of the thread count or execution mode in
/// effect on either side of the restore.
///
/// # Errors
///
/// Any [`CheckpointError`]: wrong magic, unknown version, torn or corrupt
/// payload, trailing bytes, or a payload that decodes to invalid planner
/// state.
pub fn load(bytes: &[u8]) -> Result<SweepEngine, CheckpointError> {
    let payload = unframe(CHECKPOINT_MAGIC, &[CHECKPOINT_VERSION], bytes)?;
    let mut r = Reader::new(payload);
    let engine = SweepEngine::restore(&mut r)?;
    if !r.is_empty() {
        return Err(CheckpointError::TrailingBytes(r.remaining()));
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{b_qos, drive, engine, feed_window, test_config};
    use headroom_online::planner::SweepExec;

    #[test]
    fn roundtrip_restores_mid_stream() {
        let mut live = engine(test_config(0));
        drive(&mut live, 0, 40);
        let bytes = save(&live);
        let mut restored = load(&bytes).expect("clean checkpoint loads");

        assert_eq!(restored.windows_seen(), live.windows_seen());
        assert_eq!(restored.shard_count(), live.shard_count());
        // No re-warming: continuing both engines in lockstep produces
        // byte-identical recommendation streams.
        let a = drive(&mut live, 40, 120);
        let b = drive(&mut restored, 40, 120);
        assert!(!a.is_empty(), "the drive pattern produces recommendations");
        assert_eq!(a, b);
    }

    #[test]
    fn restore_is_exec_and_thread_agnostic() {
        let mut live = engine(test_config(0));
        live.set_threads(4);
        drive(&mut live, 0, 50);
        let bytes = save(&live);
        let reference = drive(&mut live, 50, 110);

        for (threads, exec) in
            [(1, SweepExec::Scoped), (3, SweepExec::Persistent), (8, SweepExec::Scoped)]
        {
            let mut restored = load(&bytes).expect("clean checkpoint loads");
            restored.set_threads(threads);
            restored.set_exec(exec);
            assert_eq!(drive(&mut restored, 50, 110), reference, "threads={threads} exec={exec:?}");
        }
    }

    /// Regression: a checkpoint taken *mid-dwell* must carry the pending
    /// (dwell-suppressed) recommendation and the last-emitted targets. If
    /// either were dropped, the restored engine would re-emit an already
    /// announced change or lose one that was about to clear its dwell; both
    /// show up as a diverging recommendation stream at some kill window.
    #[test]
    fn restore_mid_dwell_neither_reemits_nor_drops() {
        // Reference run, never interrupted.
        let mut reference_engine = engine(test_config(3));
        drive(&mut reference_engine, 0, 30);
        let mut reference = Vec::new();
        let mut checkpoints = Vec::new();
        {
            let mut live = load(&save(&reference_engine)).expect("clean checkpoint loads");
            for w in 30..120 {
                checkpoints.push((w, save(&live)));
                feed_window(&mut live, w);
                reference.push((w, live.drain_recommendations()));
            }
        }
        let emitted: usize = reference.iter().map(|(_, r)| r.len()).sum();
        assert!(emitted > 0, "the window range exercises at least one emission");

        // Kill-and-restore at *every* window of the run — including each
        // window of every dwell countdown — and compare the remainder.
        for (kill_at, bytes) in &checkpoints {
            let mut restored = load(bytes).expect("clean checkpoint loads");
            for (w, expected) in reference.iter().filter(|(w, _)| w >= kill_at) {
                feed_window(&mut restored, *w);
                let got = restored.drain_recommendations();
                assert_eq!(&got, expected, "killed at window {kill_at}, diverged at window {w}");
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut engine = engine(test_config(0));
        drive(&mut engine, 0, 10);
        let mut bytes = save(&engine);
        bytes[0] = b'X';
        assert_eq!(load(&bytes).unwrap_err(), CheckpointError::BadMagic);
        assert_eq!(load(b"HR").unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_unknown_version() {
        let mut engine = engine(test_config(0));
        drive(&mut engine, 0, 10);
        let mut bytes = save(&engine);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(load(&bytes).unwrap_err(), CheckpointError::UnsupportedVersion(99));
    }

    #[test]
    fn rejects_flipped_payload_bit() {
        let mut engine = engine(test_config(0));
        drive(&mut engine, 0, 10);
        let mut bytes = save(&engine);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(load(&bytes), Err(CheckpointError::ChecksumMismatch { .. })));
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let mut engine = engine(test_config(0));
        drive(&mut engine, 0, 10);
        let bytes = save(&engine);
        let cut = bytes.len() - 7;
        assert!(matches!(load(&bytes[..cut]), Err(CheckpointError::Truncated { .. })));

        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 3]);
        assert_eq!(load(&padded).unwrap_err(), CheckpointError::TrailingBytes(3));
    }

    #[test]
    fn save_is_deterministic() {
        let mut a = engine(test_config(0));
        let mut b = engine(test_config(0));
        b.set_threads(6);
        drive(&mut a, 0, 60);
        drive(&mut b, 0, 60);
        // Same logical state under different execution settings — the
        // checkpoint bytes differ only where config.threads is encoded,
        // so normalize that and the encodings must agree.
        b.set_threads(1);
        assert_eq!(save(&a), save(&b));
    }

    #[test]
    fn qos_overrides_survive() {
        let mut live = engine(test_config(0));
        let tight = headroom_core::slo::QosRequirement::latency(20.0).with_cpu_ceiling(50.0);
        live.set_qos(headroom_telemetry::ids::PoolId(1), tight);
        drive(&mut live, 0, 10);
        let restored = load(&save(&live)).expect("clean checkpoint loads");
        assert_eq!(restored.qos_for(headroom_telemetry::ids::PoolId(1)), tight);
        assert_eq!(restored.qos_for(headroom_telemetry::ids::PoolId(0)), b_qos());
    }
}
