//! The reconciliation loop: converging the fleet's *actual* allocation to
//! the planner's *recommended* allocation.
//!
//! Recommendations are declarative ("pool 3 should serve with 7 servers"),
//! but actuation is an operation against real machinery: it can be slow (a
//! drain takes time), it can fail transiently (the intervention system is
//! itself a service), and it can race a newer recommendation for the same
//! pool. The [`Reconciler`] absorbs all three:
//!
//! - **Monotonic versions** — every desired target carries a version (the
//!   recommendation's window index, when fed from the planner). A stale
//!   version is rejected outright; re-offering the *current* version with
//!   the same target is an idempotent no-op, so at-least-once delivery of
//!   recommendations is safe.
//! - **Level-triggered ticks** — each [`Reconciler::tick`] compares every
//!   pool's observed allocation to its desired target and (re-)issues the
//!   apply only where they differ. Applies are idempotent on the actuator
//!   side, so re-issuing while an earlier apply is still taking effect is
//!   harmless — the loop converges on *state*, not on edges.
//! - **Bounded retries** — consecutive apply failures beyond the configured
//!   budget park the pool in [`PoolState::Diverged`], where it stays (and
//!   stays visible) until an operator or a new version moves it; one
//!   success resets the failure count.
//!
//! [`SimActuator`] adapts a `headroom_cluster` [`Simulation`] as the
//! actuation target, with the simulator's real latency semantics: a
//! scheduled resize takes effect only when its window is simulated, so the
//! loop genuinely waits out actuation latency rather than assuming applies
//! are instantaneous.

use std::collections::BTreeMap;

use headroom_cluster::sim::Simulation;
use headroom_online::planner::ResizeRecommendation;
use headroom_telemetry::ids::PoolId;

/// An apply that could not be issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActuationError(pub String);

impl std::fmt::Display for ActuationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actuation failed: {}", self.0)
    }
}

impl std::error::Error for ActuationError {}

/// The fleet-side interface the reconciler drives.
///
/// `apply` must be idempotent: the reconciler is level-triggered and will
/// re-issue an apply every tick until the observed allocation matches the
/// target.
pub trait Actuator {
    /// Requests that `pool` serve with `target` active servers.
    ///
    /// # Errors
    ///
    /// [`ActuationError`] when the request could not be issued (unknown
    /// pool, invalid size, transient actuation-system failure). Issuance is
    /// not convergence: a successful apply may still take time to be
    /// observable via [`Actuator::actual`].
    fn apply(&mut self, pool: PoolId, target: usize) -> Result<(), ActuationError>;

    /// The pool's currently observed active-server count, or `None` for a
    /// pool the actuator does not know.
    fn actual(&self, pool: PoolId) -> Option<usize>;
}

/// Where one pool stands relative to its desired target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolState {
    /// Observed allocation equals the desired target.
    Converged,
    /// An apply is in flight or pending; the loop is still working.
    Converging,
    /// The retry budget is exhausted (or the pool is unknown to the
    /// actuator); operator attention or a new version is needed.
    Diverged,
}

impl std::fmt::Display for PoolState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PoolState::Converged => "converged",
            PoolState::Converging => "converging",
            PoolState::Diverged => "diverged",
        })
    }
}

/// Why [`Reconciler::set_desired`] rejected a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetError {
    /// The offered version is older than the one already held.
    Stale {
        /// Version currently held for the pool.
        current: u64,
        /// The (older) version offered.
        offered: u64,
    },
    /// The offered version equals the held one but names a *different*
    /// target — two writers disagree about the same version, which
    /// idempotency cannot paper over.
    Conflict {
        /// The version both writers used.
        version: u64,
        /// Target currently held.
        current: usize,
        /// The conflicting target offered.
        offered: usize,
    },
}

impl std::fmt::Display for TargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetError::Stale { current, offered } => {
                write!(f, "stale target version {offered} (current {current})")
            }
            TargetError::Conflict { version, current, offered } => {
                write!(f, "conflicting targets {current} vs {offered} at version {version}")
            }
        }
    }
}

impl std::error::Error for TargetError {}

/// One pool's reconciliation status, as reported by [`Reconciler::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatus {
    /// Version of the desired target.
    pub version: u64,
    /// Desired active-server count.
    pub target: usize,
    /// Last observed active-server count (`None` before the first tick).
    pub actual: Option<usize>,
    /// Consecutive apply failures since the last success.
    pub failures: u32,
    /// The state machine's verdict.
    pub state: PoolState,
}

/// Reconciler tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconcilerConfig {
    /// Consecutive apply failures tolerated per pool before it is parked in
    /// [`PoolState::Diverged`] (default 3).
    pub max_retries: u32,
}

impl Default for ReconcilerConfig {
    fn default() -> Self {
        ReconcilerConfig { max_retries: 3 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Desired {
    version: u64,
    target: usize,
    actual: Option<usize>,
    failures: u32,
    state: PoolState,
}

/// What one [`Reconciler::tick`] did and saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Applies issued this tick.
    pub applies: usize,
    /// Applies that failed this tick.
    pub failures: usize,
    /// Pools converged after this tick.
    pub converged: usize,
    /// Pools still converging after this tick.
    pub converging: usize,
    /// Pools diverged after this tick.
    pub diverged: usize,
}

/// The control loop. Holds the desired allocation per pool and, on each
/// [`Reconciler::tick`], nudges an [`Actuator`] toward it.
#[derive(Debug, Clone, Default)]
pub struct Reconciler {
    config: ReconcilerConfig,
    pools: BTreeMap<PoolId, Desired>,
}

impl Reconciler {
    /// A reconciler with the given tuning.
    pub fn new(config: ReconcilerConfig) -> Self {
        Reconciler { config, pools: BTreeMap::new() }
    }

    /// Sets one pool's desired target under a monotonic version.
    ///
    /// A higher version always wins and resets the pool's failure budget
    /// and state. Re-offering the current version with the current target
    /// is an idempotent no-op.
    ///
    /// # Errors
    ///
    /// - [`TargetError::Stale`] when `version` is older than the held one
    ///   (the offer is dropped; the newer target stands).
    /// - [`TargetError::Conflict`] when `version` equals the held one but
    ///   `target` differs.
    pub fn set_desired(
        &mut self,
        pool: PoolId,
        version: u64,
        target: usize,
    ) -> Result<(), TargetError> {
        if let Some(held) = self.pools.get_mut(&pool) {
            if version < held.version {
                return Err(TargetError::Stale { current: held.version, offered: version });
            }
            if version == held.version {
                if target != held.target {
                    return Err(TargetError::Conflict {
                        version,
                        current: held.target,
                        offered: target,
                    });
                }
                return Ok(());
            }
            held.version = version;
            held.target = target;
            held.failures = 0;
            held.state = PoolState::Converging;
            return Ok(());
        }
        self.pools.insert(
            pool,
            Desired { version, target, actual: None, failures: 0, state: PoolState::Converging },
        );
        Ok(())
    }

    /// Feeds planner recommendations, versioned by their window index (the
    /// planner emits at most one recommendation per pool per window, and
    /// windows are monotonic, so the window index is a ready-made version).
    /// Stale and idempotent-duplicate offers are dropped silently — the log
    /// may be replayed at-least-once. Returns how many offers were
    /// accepted as *new* targets.
    pub fn ingest(&mut self, recommendations: &[ResizeRecommendation]) -> usize {
        let mut accepted = 0;
        for rec in recommendations {
            let held = self.pools.get(&rec.pool).map(|d| (d.version, d.target));
            if self.set_desired(rec.pool, rec.window.0, rec.to_servers).is_ok()
                && held != Some((rec.window.0, rec.to_servers))
            {
                accepted += 1;
            }
        }
        accepted
    }

    /// One pass of the loop: observe every pool, issue applies where the
    /// observed allocation differs from the desired target, and update the
    /// per-pool state machine.
    pub fn tick(&mut self, actuator: &mut dyn Actuator) -> TickReport {
        let mut report = TickReport::default();
        for (&pool, desired) in self.pools.iter_mut() {
            desired.actual = actuator.actual(pool);
            match (desired.state, desired.actual) {
                (PoolState::Diverged, _) => {}
                (_, None) => desired.state = PoolState::Diverged,
                (_, Some(actual)) if actual == desired.target => {
                    desired.failures = 0;
                    desired.state = PoolState::Converged;
                }
                (_, Some(_)) => {
                    desired.state = PoolState::Converging;
                    report.applies += 1;
                    match actuator.apply(pool, desired.target) {
                        Ok(()) => desired.failures = 0,
                        Err(_) => {
                            report.failures += 1;
                            desired.failures += 1;
                            if desired.failures > self.config.max_retries {
                                desired.state = PoolState::Diverged;
                            }
                        }
                    }
                }
            }
            match desired.state {
                PoolState::Converged => report.converged += 1,
                PoolState::Converging => report.converging += 1,
                PoolState::Diverged => report.diverged += 1,
            }
        }
        report
    }

    /// One pool's status, or `None` if no target was ever set for it.
    pub fn status(&self, pool: PoolId) -> Option<PoolStatus> {
        self.pools.get(&pool).map(|d| PoolStatus {
            version: d.version,
            target: d.target,
            actual: d.actual,
            failures: d.failures,
            state: d.state,
        })
    }

    /// Every managed pool's state, in pool order.
    pub fn states(&self) -> impl Iterator<Item = (PoolId, PoolState)> + '_ {
        self.pools.iter().map(|(&p, d)| (p, d.state))
    }

    /// Number of pools under management.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// Whether no pool is under management.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Whether every managed pool is [`PoolState::Converged`].
    pub fn converged(&self) -> bool {
        !self.pools.is_empty() && self.pools.values().all(|d| d.state == PoolState::Converged)
    }
}

/// Adapts a [`Simulation`] as the reconciler's actuation target.
///
/// `apply` schedules the resize at the simulator's *next* window, so it
/// takes effect only after the simulation advances — real actuation
/// latency, not an instantaneous poke. Drive the loop as
/// `reconciler.tick(&mut SimActuator::new(sim))`, then `sim.run_windows(1)`,
/// and repeat.
#[derive(Debug)]
pub struct SimActuator<'a> {
    sim: &'a mut Simulation,
}

impl<'a> SimActuator<'a> {
    /// Wraps the simulation.
    pub fn new(sim: &'a mut Simulation) -> Self {
        SimActuator { sim }
    }
}

impl Actuator for SimActuator<'_> {
    fn apply(&mut self, pool: PoolId, target: usize) -> Result<(), ActuationError> {
        let window = self.sim.current_window();
        self.sim.schedule_resize(pool, window, target).map_err(|e| ActuationError(e.to_string()))
    }

    fn actual(&self, pool: PoolId) -> Option<usize> {
        self.sim.fleet().pool(pool).map(|p| p.active_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use headroom_cluster::scenario::FleetScenario;
    use headroom_online::planner::{ResizeAction, ResizeRecommendation};
    use headroom_online::HeadroomBand;
    use headroom_telemetry::time::WindowIndex;

    /// An in-memory fleet whose applies land after `latency` ticks and fail
    /// deterministically wherever the caller scripted them to.
    struct FlakyActuator {
        actuals: BTreeMap<PoolId, usize>,
        /// (pool, target, remaining-latency) applies in flight.
        in_flight: Vec<(PoolId, usize, u32)>,
        latency: u32,
        /// Numbers of applies (1-based, global) that fail.
        fail_on: Vec<u32>,
        applies_seen: u32,
    }

    impl FlakyActuator {
        fn new(pools: &[(u32, usize)], latency: u32, fail_on: Vec<u32>) -> Self {
            FlakyActuator {
                actuals: pools.iter().map(|&(p, n)| (PoolId(p), n)).collect(),
                in_flight: Vec::new(),
                latency,
                fail_on,
                applies_seen: 0,
            }
        }

        /// Advances time one step: in-flight applies age, due ones land.
        fn step(&mut self) {
            for entry in &mut self.in_flight {
                entry.2 = entry.2.saturating_sub(1);
            }
            let mut landed = Vec::new();
            self.in_flight.retain(|&(pool, target, left)| {
                if left == 0 {
                    landed.push((pool, target));
                    false
                } else {
                    true
                }
            });
            for (pool, target) in landed {
                self.actuals.insert(pool, target);
            }
        }
    }

    impl Actuator for FlakyActuator {
        fn apply(&mut self, pool: PoolId, target: usize) -> Result<(), ActuationError> {
            self.applies_seen += 1;
            if self.fail_on.contains(&self.applies_seen) {
                return Err(ActuationError("injected failure".into()));
            }
            if !self.actuals.contains_key(&pool) {
                return Err(ActuationError(format!("unknown pool {pool:?}")));
            }
            self.in_flight.push((pool, target, self.latency));
            Ok(())
        }

        fn actual(&self, pool: PoolId) -> Option<usize> {
            self.actuals.get(&pool).copied()
        }
    }

    fn rec(pool: u32, window: u64, from: usize, to: usize) -> ResizeRecommendation {
        ResizeRecommendation {
            pool: PoolId(pool),
            window: WindowIndex(window),
            from_servers: from,
            to_servers: to,
            action: if to < from { ResizeAction::Shrink } else { ResizeAction::Grow },
            band: HeadroomBand::Ample,
        }
    }

    #[test]
    fn converges_through_actuation_latency() {
        let mut actuator = FlakyActuator::new(&[(0, 10), (1, 8)], 2, vec![]);
        let mut rc = Reconciler::new(ReconcilerConfig::default());
        rc.set_desired(PoolId(0), 1, 7).unwrap();
        rc.set_desired(PoolId(1), 1, 9).unwrap();

        let mut ticks = 0;
        while !rc.converged() {
            rc.tick(&mut actuator);
            actuator.step();
            ticks += 1;
            assert!(ticks < 20, "no convergence after {ticks} ticks");
        }
        // Latency 2 means at least three ticks: issue, wait, observe.
        assert!(ticks >= 3);
        assert_eq!(actuator.actual(PoolId(0)), Some(7));
        assert_eq!(actuator.actual(PoolId(1)), Some(9));
        let report = rc.tick(&mut actuator);
        assert_eq!(report, TickReport { converged: 2, ..TickReport::default() });
    }

    #[test]
    fn transient_failures_retry_to_convergence() {
        // First two applies fail; the loop retries within budget.
        let mut actuator = FlakyActuator::new(&[(0, 10)], 0, vec![1, 2]);
        let mut rc = Reconciler::new(ReconcilerConfig { max_retries: 3 });
        rc.set_desired(PoolId(0), 1, 6).unwrap();
        for _ in 0..5 {
            rc.tick(&mut actuator);
            actuator.step();
        }
        assert!(rc.converged());
        let status = rc.status(PoolId(0)).unwrap();
        assert_eq!(status.failures, 0);
        assert_eq!(status.actual, Some(6));
    }

    #[test]
    fn persistent_failures_bound_out_to_diverged() {
        let mut actuator = FlakyActuator::new(&[(0, 10)], 0, (1..=100).collect());
        let mut rc = Reconciler::new(ReconcilerConfig { max_retries: 2 });
        rc.set_desired(PoolId(0), 1, 6).unwrap();
        for _ in 0..10 {
            rc.tick(&mut actuator);
            actuator.step();
        }
        let status = rc.status(PoolId(0)).unwrap();
        assert_eq!(status.state, PoolState::Diverged);
        // Exactly max_retries + 1 applies were attempted, then the pool
        // was parked — a diverged pool stops consuming the actuator.
        assert_eq!(actuator.applies_seen, 3);
        // A newer version un-parks it.
        rc.set_desired(PoolId(0), 2, 6).unwrap();
        assert_eq!(rc.status(PoolId(0)).unwrap().state, PoolState::Converging);
    }

    #[test]
    fn unknown_pool_diverges() {
        let mut actuator = FlakyActuator::new(&[(0, 10)], 0, vec![]);
        let mut rc = Reconciler::new(ReconcilerConfig::default());
        rc.set_desired(PoolId(9), 1, 4).unwrap();
        rc.tick(&mut actuator);
        assert_eq!(rc.status(PoolId(9)).unwrap().state, PoolState::Diverged);
    }

    #[test]
    fn versions_are_monotonic_and_idempotent() {
        let mut rc = Reconciler::new(ReconcilerConfig::default());
        rc.set_desired(PoolId(0), 5, 8).unwrap();
        // Idempotent re-offer: same version, same target.
        rc.set_desired(PoolId(0), 5, 8).unwrap();
        // Stale: older version.
        assert_eq!(
            rc.set_desired(PoolId(0), 4, 12),
            Err(TargetError::Stale { current: 5, offered: 4 })
        );
        // Conflict: same version, different target.
        assert_eq!(
            rc.set_desired(PoolId(0), 5, 12),
            Err(TargetError::Conflict { version: 5, current: 8, offered: 12 })
        );
        // Newer version wins.
        rc.set_desired(PoolId(0), 6, 12).unwrap();
        assert_eq!(rc.status(PoolId(0)).unwrap().target, 12);
    }

    #[test]
    fn ingest_versions_by_window_and_drops_duplicates() {
        let mut rc = Reconciler::new(ReconcilerConfig::default());
        let first = [rec(0, 10, 10, 7), rec(1, 10, 8, 9)];
        assert_eq!(rc.ingest(&first), 2);
        // At-least-once redelivery of the same batch: no new targets.
        assert_eq!(rc.ingest(&first), 0);
        // An older logged batch is stale, silently.
        assert_eq!(rc.ingest(&[rec(0, 4, 10, 11)]), 0);
        assert_eq!(rc.status(PoolId(0)).unwrap().target, 7);
        // A newer window supersedes.
        assert_eq!(rc.ingest(&[rec(0, 11, 7, 6)]), 1);
        assert_eq!(rc.status(PoolId(0)).unwrap().target, 6);
        assert_eq!(rc.status(PoolId(0)).unwrap().version, 11);
    }

    /// The end-to-end loop against the real simulator: applies take effect
    /// only when the scheduled window is simulated (true actuation
    /// latency), and the loop converges every pool.
    #[test]
    fn converges_against_the_simulator() {
        let mut sim = FleetScenario::small(7).into_simulation();
        sim.run_windows(3);
        // Shrink every pool by one server, versioned by the current window.
        let version = sim.current_window().0;
        let targets: Vec<(PoolId, usize)> =
            sim.fleet().pools().iter().map(|p| (p.id, p.active_count() - 1)).collect();
        let mut rc = Reconciler::new(ReconcilerConfig::default());
        for &(pool, target) in &targets {
            rc.set_desired(pool, version, target).unwrap();
        }

        let mut ticks = 0;
        while !rc.converged() {
            rc.tick(&mut SimActuator::new(&mut sim));
            sim.run_windows(1);
            ticks += 1;
            assert!(ticks < 10, "no convergence after {ticks} ticks");
        }
        for &(pool, target) in &targets {
            assert_eq!(sim.fleet().pool(pool).unwrap().active_count(), target);
        }
        // Steady state: converged, no further applies issued.
        let report = rc.tick(&mut SimActuator::new(&mut sim));
        assert_eq!(report.applies, 0);
        assert_eq!(report.converged, targets.len());
    }

    /// A target the simulator rejects (zero servers) burns the retry
    /// budget and parks as Diverged, without disturbing other pools.
    #[test]
    fn simulator_rejection_diverges_only_the_bad_pool() {
        let mut sim = FleetScenario::small(7).into_simulation();
        let pools = sim.fleet().pools();
        let good = pools[0].id;
        let good_target = pools[0].active_count() - 1;
        let bad = pools[1].id;
        let mut rc = Reconciler::new(ReconcilerConfig { max_retries: 1 });
        rc.set_desired(good, 1, good_target).unwrap();
        rc.set_desired(bad, 1, 0).unwrap();
        for _ in 0..4 {
            rc.tick(&mut SimActuator::new(&mut sim));
            sim.run_windows(1);
        }
        assert_eq!(rc.status(good).unwrap().state, PoolState::Converged);
        assert_eq!(rc.status(bad).unwrap().state, PoolState::Diverged);
    }
}
