//! # headroom-service — the planner as a long-running control plane
//!
//! `headroom_online` answers *what should the fleet look like*; this crate
//! answers *how does that answer survive contact with operations*. A planner
//! that sizes a global fleet is itself a service: it crashes, it gets
//! redeployed mid-stream, its recommendations race against the actuation
//! machinery, and an auditor will eventually ask why pool 1731 shrank at
//! 03:40. Three small, independently testable pieces cover that surface:
//!
//! - [`checkpoint`] — versioned, checksummed binary snapshots of the full
//!   [`headroom_online::SweepEngine`] state (rings, streaming moments, P²
//!   markers, drift/dwell/deadband state, window cursor). A planner killed
//!   and restored from its last checkpoint resumes **mid-stream** and emits
//!   byte-identical recommendations thereafter — no re-warming of
//!   `min_fit_windows`, no thrown-away history.
//! - [`event_log`] — an append-only log of observations in and
//!   recommendations/assessments out, as sequenced self-describing
//!   envelopes. Replaying the observation events through a fresh engine
//!   re-derives the planner's outputs bit-identically, so the log alone is
//!   a complete audit trail *and* a disaster-recovery path.
//! - [`reconcile`] — the loop that converges the fleet's *actual*
//!   allocation to the planner's *recommended* allocation: idempotent,
//!   monotonic-version apply semantics, bounded retries, and a per-pool
//!   `Converged / Converging / Diverged` state machine, exercised against
//!   the simulator's real actuation latency (a scheduled resize takes
//!   effect only when its window is simulated).
//!
//! Determinism is the load-bearing property throughout: because the sweep
//! engine is bit-identical across thread counts and execution modes, a
//! checkpoint taken under `threads = 8, SweepExec::Persistent` restores
//! correctly under `threads = 1, SweepExec::Scoped` — the checkpoint holds
//! logical state only, never execution state.
//!
//! # Quickstart: kill, restore, resume
//!
//! ```
//! use headroom_core::slo::QosRequirement;
//! use headroom_online::planner::{OnlinePlannerConfig, PoolWindowAggregate};
//! use headroom_online::sweep::SweepEngine;
//! use headroom_service::checkpoint;
//! use headroom_telemetry::ids::PoolId;
//! use headroom_telemetry::time::WindowIndex;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = OnlinePlannerConfig { min_fit_windows: 8, ..Default::default() };
//! let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0);
//! let mut live = SweepEngine::new(config, qos);
//!
//! let agg = |w: u64| {
//!     let rps = 200.0 + 150.0 * ((w as f64 / 40.0).sin().abs());
//!     PoolWindowAggregate {
//!         window: WindowIndex(w),
//!         rps_per_server: rps,
//!         cpu_pct: 0.028 * rps + 1.37,
//!         latency_p95_ms: 4.028e-5 * rps * rps - 0.031 * rps + 36.68,
//!         disk_queue: 1.0,
//!         memory_pages_per_sec: 4000.0,
//!         network_mbps: 0.32 * rps,
//!         active_servers: 9,
//!     }
//! };
//! for w in 0..40 {
//!     live.observe_aggregates(WindowIndex(w), &[(PoolId(0), agg(w))]);
//! }
//! live.drain_recommendations();
//!
//! // Crash here. The checkpoint is all that survives.
//! let bytes = checkpoint::save(&live);
//! let mut restored = checkpoint::load(&bytes)?;
//!
//! // Both engines see the same remaining stream...
//! for w in 40..80 {
//!     live.observe_aggregates(WindowIndex(w), &[(PoolId(0), agg(w))]);
//!     restored.observe_aggregates(WindowIndex(w), &[(PoolId(0), agg(w))]);
//! }
//! // ...and emit byte-identical recommendations: no warm-up was lost.
//! assert_eq!(live.drain_recommendations(), restored.drain_recommendations());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod event_log;
pub mod reconcile;

pub use checkpoint::{load, save, CheckpointError, CHECKPOINT_VERSION};
pub use event_log::{
    replay, EventEnvelope, EventLog, EventPayload, ReplayOutcome, EVENT_LOG_VERSION,
};
pub use reconcile::{
    ActuationError, Actuator, PoolState, PoolStatus, Reconciler, ReconcilerConfig, SimActuator,
    TargetError, TickReport,
};

#[cfg(test)]
pub(crate) mod testutil;
