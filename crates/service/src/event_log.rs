//! Append-only event log: the planner's inputs and outputs as sequenced,
//! self-describing envelopes.
//!
//! Every observation the planner consumes and every recommendation or
//! assessment it produces is recorded as an [`EventEnvelope`]: a globally
//! dense event id, the window it belongs to, the pool it touches, and a
//! per-pool monotonic sequence number. Two properties follow:
//!
//! - **Audit**: "why did pool 1731 shrink at window 5040" is answered by
//!   filtering the log for that pool and reading the observation events
//!   leading up to the recommendation event — nothing else is needed.
//! - **Recovery**: because the sweep engine is a deterministic function of
//!   its observation stream, [`replay`]ing the logged observations through
//!   a fresh engine re-derives the planner's entire output — recommendation
//!   for recommendation, bit for bit (property-tested across thread counts
//!   and execution modes). The log *is* a checkpoint, traded the other way:
//!   larger and slower to restore than [`crate::checkpoint`], but
//!   incremental to write and human-auditable.
//!
//! The serialized form reuses the checkpoint frame (magic `b"HREL"`,
//! version, FNV-1a 64 checksum, length) around a length-prefixed envelope
//! array, and decoding re-validates both sequencing invariants.

use std::collections::BTreeMap;

use headroom_online::planner::{PoolAssessment, PoolWindowAggregate, ResizeRecommendation};
use headroom_online::sweep::SweepEngine;
use headroom_stats::persist::{Persist, PersistError, Reader, Writer};
use headroom_telemetry::ids::PoolId;
use headroom_telemetry::time::WindowIndex;

use crate::checkpoint::{frame, unframe, CheckpointError};

/// First four bytes of a serialized event log.
pub const EVENT_LOG_MAGIC: [u8; 4] = *b"HREL";

/// Current event-log format version.
pub const EVENT_LOG_VERSION: u32 = 1;

/// What an event carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// One pool's aggregate observation for one window (planner input).
    Observation(PoolWindowAggregate),
    /// A sizing change the planner emitted (planner output).
    Recommendation(ResizeRecommendation),
    /// A full per-pool assessment snapshot (planner output, optional —
    /// logged when an auditor wants the *why* next to the *what*).
    Assessment(PoolAssessment),
}

impl Persist for EventPayload {
    fn persist(&self, w: &mut Writer) {
        match self {
            EventPayload::Observation(a) => {
                w.put_u8(0);
                a.persist(w);
            }
            EventPayload::Recommendation(r) => {
                w.put_u8(1);
                r.persist(w);
            }
            EventPayload::Assessment(a) => {
                w.put_u8(2);
                a.persist(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(match r.take_u8()? {
            0 => EventPayload::Observation(PoolWindowAggregate::restore(r)?),
            1 => EventPayload::Recommendation(ResizeRecommendation::restore(r)?),
            2 => EventPayload::Assessment(PoolAssessment::restore(r)?),
            _ => return Err(PersistError::Invalid("unknown EventPayload tag")),
        })
    }
}

/// One sequenced log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EventEnvelope {
    /// Log-global id: dense, ascending from zero.
    pub event_id: u64,
    /// The window this event belongs to.
    pub window: WindowIndex,
    /// The pool this event touches.
    pub pool: PoolId,
    /// Per-pool monotonic sequence: the n-th event touching this pool,
    /// counted from zero. Lets a per-pool consumer detect gaps without
    /// scanning the whole log.
    pub pool_seq: u64,
    /// The event itself.
    pub payload: EventPayload,
}

impl Persist for EventEnvelope {
    fn persist(&self, w: &mut Writer) {
        w.put_u64(self.event_id);
        w.put_u64(self.window.0);
        w.put_u32(self.pool.0);
        w.put_u64(self.pool_seq);
        self.payload.persist(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(EventEnvelope {
            event_id: r.take_u64()?,
            window: WindowIndex(r.take_u64()?),
            pool: PoolId(r.take_u32()?),
            pool_seq: r.take_u64()?,
            payload: EventPayload::restore(r)?,
        })
    }
}

/// The append-only log. Construction is append-only by design: events get
/// their ids and per-pool sequence numbers at record time and are never
/// renumbered or removed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    events: Vec<EventEnvelope>,
    pool_seqs: BTreeMap<PoolId, u64>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Events recorded so far, in order.
    pub fn events(&self) -> &[EventEnvelope] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, window: WindowIndex, pool: PoolId, payload: EventPayload) {
        let seq = self.pool_seqs.entry(pool).or_insert(0);
        self.events.push(EventEnvelope {
            event_id: self.events.len() as u64,
            window,
            pool,
            pool_seq: *seq,
            payload,
        });
        *seq += 1;
    }

    /// Records one window's observations (planner input), in the given
    /// order — pass the same slice that goes to
    /// [`SweepEngine::observe_aggregates`] and the log captures exactly
    /// what the planner saw.
    pub fn record_observations(
        &mut self,
        window: WindowIndex,
        aggregates: &[(PoolId, PoolWindowAggregate)],
    ) {
        for &(pool, agg) in aggregates {
            self.push(window, pool, EventPayload::Observation(agg));
        }
    }

    /// Records drained recommendations (planner output).
    pub fn record_recommendations(&mut self, recommendations: &[ResizeRecommendation]) {
        for rec in recommendations {
            self.push(rec.window, rec.pool, EventPayload::Recommendation(*rec));
        }
    }

    /// Records one pool's assessment snapshot (planner output).
    pub fn record_assessment(&mut self, pool: PoolId, assessment: &PoolAssessment) {
        self.push(assessment.window, pool, EventPayload::Assessment(assessment.clone()));
    }

    /// Serializes the log into its framed binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.events.persist(&mut w);
        frame(EVENT_LOG_MAGIC, EVENT_LOG_VERSION, w.into_bytes())
    }

    /// Decodes a log serialized by [`EventLog::to_bytes`], re-validating
    /// both sequencing invariants (dense ascending event ids, per-pool
    /// monotonic sequence numbers).
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] — the event log shares the checkpoint frame,
    /// so the same magic/version/checksum/truncation checks apply, plus
    /// [`CheckpointError::Codec`] when an envelope or the sequencing is
    /// corrupt.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog, CheckpointError> {
        let payload = unframe(EVENT_LOG_MAGIC, &[EVENT_LOG_VERSION], bytes)?;
        let mut r = Reader::new(payload);
        let events: Vec<EventEnvelope> = Vec::restore(&mut r)?;
        if !r.is_empty() {
            return Err(CheckpointError::TrailingBytes(r.remaining()));
        }
        let mut pool_seqs: BTreeMap<PoolId, u64> = BTreeMap::new();
        for (i, event) in events.iter().enumerate() {
            if event.event_id != i as u64 {
                return Err(PersistError::Invalid("event ids not dense ascending").into());
            }
            let seq = pool_seqs.entry(event.pool).or_insert(0);
            if event.pool_seq != *seq {
                return Err(PersistError::Invalid("per-pool sequence broken").into());
            }
            *seq += 1;
        }
        Ok(EventLog { events, pool_seqs })
    }
}

/// What [`replay`] produced.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The engine after consuming every logged observation — state-identical
    /// to the live engine at the same point in the stream.
    pub engine: SweepEngine,
    /// Every recommendation the replayed engine emitted, in order.
    pub recommendations: Vec<ResizeRecommendation>,
}

/// Re-derives the planner's outputs from the log alone.
///
/// Feeds every logged observation through `engine` (a fresh engine built
/// with the live run's config and QoS table), batching consecutive
/// observation events of the same window into one
/// [`SweepEngine::observe_aggregates`] call — exactly the shape the live
/// run used — and draining after each window. Logged output events
/// (recommendations, assessments) are skipped: they are what replay
/// re-derives, not what it consumes.
///
/// Determinism makes this exact: the returned recommendations equal the
/// live run's byte for byte, and the returned engine checkpoints to the
/// same bytes as the live engine (given equal configs).
pub fn replay(mut engine: SweepEngine, events: &[EventEnvelope]) -> ReplayOutcome {
    let mut recommendations = Vec::new();
    let mut batch: Vec<(PoolId, PoolWindowAggregate)> = Vec::new();
    let mut batch_window = WindowIndex(0);
    for event in events {
        let agg = match &event.payload {
            EventPayload::Observation(agg) => *agg,
            _ => continue,
        };
        if !batch.is_empty() && event.window != batch_window {
            engine.observe_aggregates(batch_window, &batch);
            recommendations.extend(engine.drain_recommendations());
            batch.clear();
        }
        batch_window = event.window;
        batch.push((event.pool, agg));
    }
    if !batch.is_empty() {
        engine.observe_aggregates(batch_window, &batch);
        recommendations.extend(engine.drain_recommendations());
    }
    ReplayOutcome { engine, recommendations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint;
    use crate::testutil::{engine, test_config, window_aggregates};
    use headroom_online::planner::{OnlinePlannerConfig, SweepExec};
    use proptest::prelude::*;

    /// Drives a live engine `windows` windows, logging inputs and outputs.
    fn logged_run(mut live: SweepEngine, windows: u64) -> (SweepEngine, EventLog) {
        let mut log = EventLog::new();
        for w in 0..windows {
            let aggs = window_aggregates(w);
            log.record_observations(WindowIndex(w), &aggs);
            live.observe_aggregates(WindowIndex(w), &aggs);
            log.record_recommendations(&live.drain_recommendations());
        }
        (live, log)
    }

    #[test]
    fn sequencing_invariants_hold() {
        let (_, log) = logged_run(engine(test_config(0)), 40);
        assert!(!log.is_empty());
        for (i, event) in log.events().iter().enumerate() {
            assert_eq!(event.event_id, i as u64);
        }
        let mut seqs: BTreeMap<PoolId, u64> = BTreeMap::new();
        for event in log.events() {
            let seq = seqs.entry(event.pool).or_insert(0);
            assert_eq!(event.pool_seq, *seq);
            *seq += 1;
        }
    }

    #[test]
    fn serialization_roundtrips() {
        let (live, mut log) = logged_run(engine(test_config(0)), 40);
        // Mix an assessment event in.
        let assessment = live.assessments().values().next().expect("pools planned").clone();
        log.record_assessment(assessment.sizing.pool, &assessment);
        let decoded = EventLog::from_bytes(&log.to_bytes()).expect("clean log decodes");
        assert_eq!(decoded, log);
    }

    #[test]
    fn decode_rejects_broken_sequencing() {
        let (_, log) = logged_run(engine(test_config(0)), 20);
        let mut events = log.events().to_vec();
        events[3].pool_seq += 1;
        let mut w = Writer::new();
        events.persist(&mut w);
        let bytes = frame(EVENT_LOG_MAGIC, EVENT_LOG_VERSION, w.into_bytes());
        assert_eq!(
            EventLog::from_bytes(&bytes),
            Err(PersistError::Invalid("per-pool sequence broken").into())
        );
    }

    #[test]
    fn checkpoint_magic_is_not_an_event_log() {
        let mut live = engine(test_config(0));
        crate::testutil::drive(&mut live, 0, 10);
        let bytes = checkpoint::save(&live);
        assert_eq!(EventLog::from_bytes(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn replay_rederives_the_live_run() {
        let (live, log) = logged_run(engine(test_config(2)), 120);
        let outcome = replay(engine(test_config(2)), log.events());
        let logged: Vec<ResizeRecommendation> = log
            .events()
            .iter()
            .filter_map(|e| match &e.payload {
                EventPayload::Recommendation(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert!(!logged.is_empty(), "the run emitted recommendations");
        assert_eq!(outcome.recommendations, logged);
        // State equality, bit for bit, via the checkpoint encoding.
        assert_eq!(checkpoint::save(&outcome.engine), checkpoint::save(&live));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Satellite invariant: replaying a logged run is *byte-identical*
        /// to the live run — recommendations and final checkpoint bytes —
        /// for any thread count 1–8 and either execution mode on the live
        /// side (the replay side always runs sequentially, which is the
        /// point: the log alone reproduces a parallel run's output).
        #[test]
        fn replay_is_byte_identical_across_exec(
            threads in 1usize..9,
            scoped in any::<bool>(),
            dwell in 0u64..4,
            windows in 40u64..100,
        ) {
            let exec = if scoped { SweepExec::Scoped } else { SweepExec::Persistent };
            let config = OnlinePlannerConfig { threads, exec, ..test_config(dwell) };
            let (live, log) = logged_run(engine(config), windows);
            let outcome = replay(engine(config), log.events());
            let logged: Vec<ResizeRecommendation> = log
                .events()
                .iter()
                .filter_map(|e| match &e.payload {
                    EventPayload::Recommendation(r) => Some(*r),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(&outcome.recommendations, &logged);
            prop_assert_eq!(checkpoint::save(&outcome.engine), checkpoint::save(&live));
        }
    }
}
