//! # headroom
//!
//! A reproduction of *"Right-sizing Server Capacity Headroom for Global
//! Online Services"* (Verbowski et al., ICDCS 2018) as a production-quality
//! Rust workspace: a black-box capacity planner, the fleet simulator it is
//! evaluated on, baseline planners, and the full experiment harness.
//!
//! This facade crate re-exports every workspace crate under one roof so
//! applications can depend on a single crate:
//!
//! - [`stats`] — regression, RANSAC, decision trees, clustering, percentiles.
//! - [`telemetry`] — 120-second windowed counters, metric store, availability.
//! - [`workload`] — diurnal demand, unplanned events, synthetic workloads.
//! - [`cluster`] — the deterministic fleet simulator (datacenters, pools,
//!   micro-services A–G, maintenance, failures).
//! - [`core`] — the paper's methodology: measure → optimize → model → validate.
//! - [`online`] — the streaming half: incremental estimators, drift
//!   detection, exhaustion projection, and the window-by-window
//!   [`online::planner::OnlinePlanner`] control loop.
//! - [`baselines`] — Erlang-C, reactive autoscaler and static-peak planners.
//! - [`service`] — the planner as a long-running service: checkpoint/restore,
//!   append-only event log with bit-identical replay, and the reconciliation
//!   loop that converges the fleet to the planner's recommendations.
//!
//! # Quickstart
//!
//! ```
//! use headroom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate one diurnal day of a small fleet, then fit the
//! // workload -> CPU relationship for one pool.
//! let scenario = FleetScenario::small(42);
//! let outcome = scenario.run_days(1.0)?;
//! let pool = outcome.pools()[0];
//! let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
//! let cpu = CpuModel::fit(&obs)?;
//! assert!(cpu.fit.r_squared > 0.9);
//! # Ok(())
//! # }
//! ```

pub use headroom_baselines as baselines;
pub use headroom_cluster as cluster;
pub use headroom_core as core;
pub use headroom_online as online;
pub use headroom_service as service;
pub use headroom_stats as stats;
pub use headroom_telemetry as telemetry;
pub use headroom_workload as workload;

/// Convenient re-exports of the types used by almost every application.
pub mod prelude {
    pub use headroom_cluster::catalog::MicroserviceKind;
    pub use headroom_cluster::scenario::{FleetScenario, ScenarioOutcome};
    pub use headroom_cluster::sim::Simulation;
    pub use headroom_core::curves::{CpuModel, LatencyModel, PoolObservations};
    pub use headroom_core::forecast::CapacityForecaster;
    pub use headroom_core::pipeline::CapacityPlanner;
    pub use headroom_core::sizing::{PoolSizing, SizingPlanner};
    pub use headroom_core::slo::{QosRequirement, Slo};
    pub use headroom_online::exhaustion::HeadroomBand;
    pub use headroom_online::planner::{OnlinePlanner, OnlinePlannerConfig};
    pub use headroom_stats::{LinearFit, Polynomial, StreamingLinReg, Summary};
    pub use headroom_telemetry::time::{SimTime, WindowRange};
}
