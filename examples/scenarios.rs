//! Drive an adversarial scenario through the closed planning loop and
//! print its scorecard: generate a deterministic regional-failover
//! scenario from the catalog, lose a datacenter mid-run, and watch the
//! streaming planner detect the emergency, grow the survivors, and settle
//! back down after the datacenter returns.
//!
//! A tightly-sized closed loop has urgency of its own around the diurnal
//! peak, so — like the `repro scenarios` gate — the scorecard is
//! *differential*: the same loop is driven once with no events as a
//! control, and detection means more urgent pools than the control had in
//! the same window.
//!
//! ```text
//! cargo run --release --example scenarios
//! ```

use std::collections::BTreeMap;

use headroom::cluster::scenario::FleetScenario;
use headroom::cluster::sim::RecordingPolicy;
use headroom::online::planner::{OnlinePlannerConfig, ResizeAction, SweepExec};
use headroom::online::sweep::SweepEngine;
use headroom::prelude::*;
use headroom::telemetry::ids::PoolId;
use headroom::workload::scenarios::{self, Scenario};

struct Drive {
    /// Urgent pool count after each window.
    urgent: Vec<usize>,
    recommendations: u64,
    flaps: u64,
    engine: SweepEngine,
}

/// One closed-loop drive: observe a window, apply every recommendation
/// for the next one, count urgency and flaps along the way.
fn drive(scenario: &Scenario, seed: u64) -> Drive {
    let mut sim = FleetScenario::small(seed)
        .with_scenario(scenario)
        .with_recording(RecordingPolicy::SnapshotOnly)
        .into_simulation();
    let config = OnlinePlannerConfig {
        window_capacity: 240,
        min_fit_windows: 120,
        dwell_windows: 2,
        threads: 4,
        exec: SweepExec::Persistent,
        min_pool_chunk: 1,
        ..OnlinePlannerConfig::default()
    };
    let mut engine = SweepEngine::new(config, QosRequirement::latency(50.0).with_cpu_ceiling(90.0));
    for pool in sim.fleet().pools() {
        engine.set_qos(
            pool.id,
            QosRequirement::latency(pool.service.spec().latency_slo_ms).with_cpu_ceiling(90.0),
        );
    }
    let physical: BTreeMap<PoolId, usize> =
        sim.fleet().pools().iter().map(|p| (p.id, p.size())).collect();
    let mut urgent = Vec::with_capacity(scenario.windows() as usize);
    let mut recommendations = 0;
    let mut flaps = 0;
    let mut last_action: BTreeMap<PoolId, ResizeAction> = BTreeMap::new();
    for _ in 0..scenario.windows() {
        let snap = sim.step_snapshot_partitioned();
        engine.observe_partitioned(&snap);
        urgent.push(engine.assessments().values().filter(|a| a.band.needs_capacity()).count());
        let recs = engine.drain_recommendations();
        let next = sim.current_window();
        for mut rec in recs {
            rec.to_servers = rec.to_servers.clamp(1, physical[&rec.pool]);
            recommendations += 1;
            if let Some(prev) = last_action.insert(rec.pool, rec.action) {
                if prev != rec.action {
                    flaps += 1;
                }
            }
            let _ = sim.schedule_resize(rec.pool, next, rec.to_servers);
        }
    }
    Drive { urgent, recommendations, flaps, engine }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The catalog is deterministic per (seed, datacenters): the same seed
    // always yields the same onset jitter, lost datacenter, and magnitudes.
    let seed = 42;
    let scenario = scenarios::regional_failover(seed, 3);
    scenario.validate(3).map_err(|e| format!("ill-formed scenario: {e}"))?;
    let lost = scenario
        .script()
        .events()
        .iter()
        .find_map(|e| e.effect.is_loss().then(|| e.effect.datacenter()).flatten())
        .expect("a failover scenario scripts a loss");
    let onset = scenario.onset_window().0;
    println!(
        "scenario {:?}: losing DC{} at window {} for 2 h, driving {} windows",
        scenario.name(),
        lost.0,
        onset,
        scenario.windows()
    );

    let control = drive(&scenarios::baseline(scenario.windows()), seed);
    let run = drive(&scenario, seed);

    let detection = (onset as usize..run.urgent.len())
        .find(|&w| run.urgent[w] > control.urgent[w])
        .map(|w| w as u64);
    if let Some(w) = detection {
        println!(
            "window {w} (+{} after onset): {} pool(s) urgent vs {} in the control — \
             emergency detected",
            w - onset,
            run.urgent[w as usize],
            control.urgent[w as usize]
        );
    }

    println!("\nscorecard (scenario vs no-event control)");
    println!("  windows driven       {}", scenario.windows());
    println!("  onset window         {onset}");
    match detection {
        Some(w) => println!("  detection delay      {} windows", w - onset),
        None => println!("  detection delay      never detected"),
    }
    println!(
        "  peak urgent pools    {} (control {})",
        run.urgent.iter().max().unwrap_or(&0),
        control.urgent.iter().max().unwrap_or(&0)
    );
    println!(
        "  recommendations      {} (control {})",
        run.recommendations, control.recommendations
    );
    println!("  grow<->shrink flaps  {} (control {})", run.flaps, control.flaps);
    println!("\nfinal bands at run end");
    for (pool, a) in run.engine.assessments().iter() {
        println!(
            "  pool {:>2}: {:?} ({} servers, supportable {:.0} rps, peak {:.0} rps)",
            pool.0,
            a.band,
            a.sizing.current_servers,
            a.projection.supportable_rps,
            a.projection.peak_rps
        );
    }
    Ok(())
}
