//! Natural-experiment analysis (§II-B1): learn from an unplanned datacenter
//! loss instead of running risky production experiments.
//!
//! A two-hour datacenter outage reroutes a region's traffic onto the
//! surviving pools. The planner detects those windows, then checks whether
//! the response curves fitted on *calm* data keep predicting through the
//! surge — if they do, the surge data extends the curves for free.
//!
//! ```text
//! cargo run --example incident_analysis
//! ```

use headroom::cluster::catalog::MicroserviceKind;
use headroom::core::curves::{CpuModel, LatencyModel, PoolObservations};
use headroom::core::natural::{
    find_natural_experiments, verify_cpu_model_holds, verify_latency_model_holds,
};
use headroom::prelude::*;
use headroom::telemetry::ids::DatacenterId;
use headroom::workload::events;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Service B in four datacenters; DC1 is lost for two hours on day 2.
    let event_start = SimTime::from_days(2.0 + 15.5 / 24.0);
    let script = events::two_hour_dc_loss(DatacenterId(0), event_start);
    let outcome = FleetScenario::single_service(MicroserviceKind::B, 4, 60, 21)
        .with_events(script)
        .run_days(4.0)?;

    for (dc, pool) in outcome.pools().into_iter().enumerate().skip(1) {
        let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
        let experiments = find_natural_experiments(&obs, 1.25)?;
        let Some(event) =
            experiments.iter().max_by(|a, b| a.peak_rps.partial_cmp(&b.peak_rps).expect("finite"))
        else {
            println!("DC{}: no abnormal windows", dc + 1);
            continue;
        };

        // Fit on calm windows only; the event is out-of-sample evidence.
        let calm = obs.filter_by(|i| !event.indices.contains(&i));
        let cpu = CpuModel::fit(&calm)?;
        let latency = LatencyModel::fit(&calm)?;
        let cpu_hold = verify_cpu_model_holds(&cpu, &obs, event, 0.08);
        let lat_hold = verify_latency_model_holds(&latency, &obs, event, 0.10);

        println!(
            "DC{}: surge to {:.0} rps/server ({:.1}x envelope) over {} windows",
            dc + 1,
            event.peak_rps,
            event.surge_factor(),
            event.indices.len()
        );
        println!(
            "  cpu line holds: {} (mean |err| {:.2} pp)",
            cpu_hold.holds, cpu_hold.mean_abs_error
        );
        println!(
            "  latency quadratic holds: {} (mean |err| {:.2} ms)",
            lat_hold.holds, lat_hold.mean_abs_error
        );
    }
    println!("\nconclusion: with enough natural experiments, no risky production");
    println!("reduction experiments are needed to extend the curves (paper, Sec. II-B1)");
    Ok(())
}
