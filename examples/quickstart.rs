//! Quickstart: simulate a small fleet, learn a pool's response curves, and
//! forecast a server reduction — the paper's §III-A experiment in ~40 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use headroom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small fleet: services B and D in three datacenters, two diurnal days.
    let scenario = FleetScenario::small(42);
    let outcome = scenario.run_days(2.0)?;

    let pool = outcome.pools()[0];
    let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
    println!("pool {pool}: {} observation windows", obs.len());

    // Step 1-2: the two black-box response curves.
    let forecaster = CapacityForecaster::fit(&obs)?;
    println!("cpu fit     : {}", forecaster.cpu.fit);
    println!("latency fit : {} (R^2 {:.3})", forecaster.latency.poly, forecaster.latency.r_squared);

    // Forecast the paper's experiment: remove 30% of servers.
    let p95 = obs.rps_percentile(95.0)?;
    let forecast = forecaster.after_reduction(p95, 0.30)?;
    println!(
        "at p95 load ({p95:.0} rps/server), removing 30% of servers gives:\n  \
         -> {:.0} rps/server, {:.1}% CPU, {:.1} ms p95 latency",
        forecast.rps_per_server, forecast.cpu_pct, forecast.latency_p95_ms
    );

    // Invert: the smallest pool meeting a 32.5 ms SLO at peak.
    let qos = QosRequirement::latency(32.5).with_cpu_ceiling(60.0);
    let peak_total = obs.total_rps().into_iter().fold(f64::NEG_INFINITY, f64::max);
    let min_servers = forecaster.min_servers(peak_total, &qos, 0.05)?;
    let current = obs.active_servers.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    println!(
        "minimum servers for '{qos:?}' at peak ({peak_total:.0} rps total): \
         {min_servers} (currently {current:.0})"
    );
    Ok(())
}
