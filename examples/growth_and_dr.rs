//! Forward planning: workload-growth trends and disaster-recovery sizing.
//!
//! The optimizer answers "how few servers today?"; capacity planners also
//! need "how many in a quarter?" (workload trends, §II) and "how many to
//! survive a datacenter loss?" (the DR capacity the paper's savings must
//! not eat into).
//!
//! ```text
//! cargo run --example growth_and_dr
//! ```

use headroom::cluster::catalog::MicroserviceKind;
use headroom::core::disaster::dr_min_servers;
use headroom::core::growth::GrowthModel;
use headroom::prelude::*;
use headroom::workload::events::{EventEffect, EventScript, ScheduledEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A business week of traffic with ~1%/day organic growth, scripted as
    // daily demand multipliers on top of the diurnal cycle. (Fitting across
    // a weekend would confound the trend with the weekly dip — trend
    // windows are weekday-aligned, as a production planner's would be.)
    let growth_script: EventScript = (0..5u64)
        .map(|day| {
            ScheduledEvent::new(
                SimTime::from_days(day as f64),
                86_400,
                EventEffect::GlobalDemandMultiplier { factor: 1.0 + 0.01 * day as f64 },
            )
        })
        .collect();
    let outcome = FleetScenario::single_service(MicroserviceKind::B, 3, 60, 4242)
        .with_events(growth_script)
        .run_days(5.0)?;

    // Fit response curves + growth trend on the pool in the largest DC.
    let pool = outcome.pools()[0];
    let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
    let forecaster = CapacityForecaster::fit(&obs)?;
    let growth = GrowthModel::fit_from_observations(&obs)?;
    println!(
        "growth trend: {:+.0} rps/day ({:.2}%/day) over {} days of history",
        growth.trend.slope,
        growth.daily_growth_rate() * 100.0,
        growth.history_days
    );

    let qos = QosRequirement::latency(32.5).with_cpu_ceiling(60.0);
    for horizon in [0.0, 10.0, 20.0] {
        let n = growth.min_servers_at(&forecaster, &qos, horizon, 0.05)?;
        println!("  servers needed {horizon:>4.0} days out: {n}");
    }
    // The model refuses to extrapolate far past its history:
    if let Err(e) = growth.min_servers_at(&forecaster, &qos, 90.0, 0.05) {
        println!("  servers needed   90 days out: refused ({e})");
    }

    // DR sizing: per-DC peaks + weights, tolerate any single-DC loss.
    let mut peaks = Vec::new();
    let mut weights = Vec::new();
    for pool in outcome.pools() {
        let obs = PoolObservations::collect(outcome.store(), pool, outcome.range())?;
        peaks.push(obs.total_rps().into_iter().fold(0.0f64, f64::max));
        let dc = outcome.store().pool_datacenter(pool).expect("registered");
        weights.push(outcome.fleet().datacenter(dc).map(|d| d.weight).unwrap_or(1.0));
    }
    let plan = dr_min_servers(&forecaster, &peaks, &weights, &qos)?;
    println!("\ndisaster-recovery sizing (survive any single-DC loss):");
    for (i, (&with_dr, &without)) in plan.servers.iter().zip(&plan.servers_without_dr).enumerate() {
        println!(
            "  DC{}: {with_dr} servers (vs {without} without DR), worst-case {:.0} rps/server",
            i + 1,
            plan.worst_case_rps[i]
        );
    }
    println!(
        "DR overhead: {:.0}% of the allocation exists purely for failover",
        plan.dr_overhead() * 100.0
    );
    Ok(())
}
