//! Live capacity planning: drive the fleet simulator one 120-second window
//! at a time while the streaming planner keeps every pool's sizing current,
//! classifies headroom, and projects days to exhaustion under growing
//! demand.
//!
//! ```text
//! cargo run --release --example online_planner
//! ```

use headroom::cluster::scenario::FleetScenario;
use headroom::core::report::render_table;
use headroom::core::sizing::SizingPlanner;
use headroom::online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom::prelude::*;
use headroom::telemetry::ids::PoolId;
use headroom::workload::events::daily_growth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five days of the small fleet with demand compounding +3% per day.
    let days = 5.0;
    let windows = (days * 720.0) as u64;
    let scenario = FleetScenario::small(11).with_events(daily_growth(0.03, days as u64));
    let mut sim = scenario.into_simulation();

    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    // Pools 0-2 run service B; pools 3-5 run service D with a looser SLO.
    let mut planner = OnlinePlanner::new(config, QosRequirement::small_fleet(PoolId(0)));
    for pool in 3..6 {
        planner.set_qos(PoolId(pool), QosRequirement::small_fleet(PoolId(pool)));
    }

    println!("streaming {windows} windows ({days} days) through the planner...");
    let mut recommendations = 0usize;
    for _ in 0..windows {
        let snap = sim.step_snapshot();
        planner.observe(&snap);
        recommendations += planner.drain_recommendations().len();
    }

    let mut rows = Vec::new();
    for sizing in planner.sizings() {
        let a = &planner.assessments()[&sizing.pool];
        rows.push(vec![
            sizing.pool.to_string(),
            sizing.current_servers.to_string(),
            sizing.min_servers.to_string(),
            format!("{:.0}%", sizing.headroom_fraction() * 100.0),
            a.band.to_string(),
            a.projection
                .days_to_exhaustion
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.3}", a.cpu_r_squared),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Pool", "Current", "Min", "Headroom", "Band", "Days to exhaustion", "CPU R^2"],
            &rows
        )
    );
    println!(
        "{} resize recommendation(s) over the run; every sizing is revised each window.",
        recommendations
    );
    Ok(())
}
