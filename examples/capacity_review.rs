//! Quarterly capacity review: run the full measure→optimize pipeline over a
//! paper-shaped fleet and print the Table IV-style savings report.
//!
//! ```text
//! cargo run --release --example capacity_review
//! ```

use headroom::cluster::catalog::MicroserviceKind;
use headroom::cluster::scenario::FleetScenario;
use headroom::core::report::{ms, pct, render_table};
use headroom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two weeks of telemetry from a scaled-down 9-DC fleet.
    println!("simulating the fleet (this takes a moment)...");
    let outcome = FleetScenario::paper_scale(7, 0.10).run_days(2.0)?;

    // Per-service QoS requirements come from the business (here: catalog).
    let fleet = outcome.fleet();
    let qos_for = |pool: headroom::telemetry::ids::PoolId| {
        let kind = fleet.pool(pool).map(|p| p.service).unwrap_or(MicroserviceKind::B);
        QosRequirement::latency(kind.spec().latency_slo_ms).with_cpu_ceiling(60.0)
    };

    let planner = CapacityPlanner { availability_days: 2, ..CapacityPlanner::new() };
    let report = planner.plan(outcome.store(), outcome.availability(), outcome.range(), qos_for);

    let mut rows = Vec::new();
    for plan in &report.pools {
        let service = fleet.pool(plan.pool).map(|p| p.service.to_string()).unwrap_or_default();
        rows.push(vec![
            plan.pool.to_string(),
            service,
            plan.savings.current_servers.to_string(),
            plan.savings.min_servers.to_string(),
            pct(plan.savings.efficiency_savings),
            ms(plan.savings.latency_impact_ms),
            pct(plan.savings.online_savings),
            pct(plan.savings.total_savings),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Pool", "Svc", "Now", "Min", "Efficiency", "Latency", "Online", "Total"],
            &rows
        )
    );

    let savings = report.savings();
    println!(
        "fleet: {} servers, {:.0} removable ({} efficiency + {} online = {} total)",
        savings.total_servers(),
        savings.removable_servers(),
        pct(savings.efficiency_savings()),
        pct(savings.online_savings()),
        pct(savings.total_savings()),
    );
    if !report.skipped.is_empty() {
        println!("skipped pools (metric validation failed):");
        for (pool, err) in &report.skipped {
            println!("  {pool}: {err}");
        }
    }
    Ok(())
}
