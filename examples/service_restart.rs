//! Kill the planner mid-run and restore it: checkpoint the streaming sweep
//! engine halfway through a fleet drive, "crash", restore into a fresh
//! engine, and finish the run — the recommendations after the restore are
//! byte-identical to an uninterrupted reference. Then hand the final
//! targets to the reconciler, which converges the live simulation to them
//! through the simulator's real actuation latency.
//!
//! ```text
//! cargo run --release --example service_restart
//! ```

use headroom::cluster::scenario::FleetScenario;
use headroom::online::planner::{OnlinePlannerConfig, PoolWindowAggregate, ResizeRecommendation};
use headroom::online::sweep::SweepEngine;
use headroom::prelude::*;
use headroom::service::checkpoint;
use headroom::service::event_log::{replay, EventLog};
use headroom::service::reconcile::{Reconciler, ReconcilerConfig, SimActuator};
use headroom::telemetry::ids::PoolId;
use headroom::telemetry::time::WindowIndex;
use headroom::workload::events::daily_growth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let days = 2.0;
    let windows = (days * 720.0) as u64;
    let kill_at = windows / 2;

    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    let mk_engine = || {
        let mut e = SweepEngine::new(config, QosRequirement::small_fleet(PoolId(0)));
        for pool in 3..6 {
            e.set_qos(PoolId(pool), QosRequirement::small_fleet(PoolId(pool)));
        }
        e
    };

    // The "service": one simulation, one engine, an event log of every
    // input and output, and a checkpoint taken halfway.
    // Demand compounds +4% per day, so the planner keeps recommending
    // after the crash and the restore has something to prove.
    let mut sim =
        FleetScenario::small(11).with_events(daily_growth(0.04, days as u64)).into_simulation();
    let mut engine = mk_engine();
    let mut log = EventLog::new();
    let mut before: Vec<ResizeRecommendation> = Vec::new();
    println!("streaming {windows} windows; killing the planner at window {kill_at}...");
    for w in 0..kill_at {
        let aggregates = PoolWindowAggregate::from_snapshot(&sim.step_snapshot());
        log.record_observations(WindowIndex(w), &aggregates);
        engine.observe_aggregates(WindowIndex(w), &aggregates);
        let recs = engine.drain_recommendations();
        log.record_recommendations(&recs);
        before.extend(recs);
    }

    // Checkpoint, then "crash": drop the engine entirely. The checkpoint
    // is a self-contained, checksummed byte blob — in a real deployment it
    // would be the file the restarted process reads at boot.
    let blob = checkpoint::save(&engine);
    drop(engine);
    println!("checkpoint: {} bytes (version {})", blob.len(), checkpoint::CHECKPOINT_VERSION);

    // Restore and finish the run; drive an uninterrupted twin on the same
    // stream to prove the restore lost nothing.
    let mut restored = checkpoint::load(&blob)?;
    let mut reference = replay(mk_engine(), log.events()).engine;
    let mut after: Vec<ResizeRecommendation> = Vec::new();
    let mut reference_after: Vec<ResizeRecommendation> = Vec::new();
    for w in kill_at..windows {
        let aggregates = PoolWindowAggregate::from_snapshot(&sim.step_snapshot());
        restored.observe_aggregates(WindowIndex(w), &aggregates);
        reference.observe_aggregates(WindowIndex(w), &aggregates);
        after.extend(restored.drain_recommendations());
        reference_after.extend(reference.drain_recommendations());
    }
    assert_eq!(after, reference_after, "restore must lose nothing");
    println!(
        "{} recommendation(s) before the crash, {} after — identical to the \
         uninterrupted run, and the {}-event log replays to the same state.",
        before.len(),
        after.len(),
        log.len()
    );

    // Reconcile: converge the live fleet to the planner's last word per
    // pool, versioned by the window it was derived in.
    let mut rc = Reconciler::new(ReconcilerConfig::default());
    for rec in before.iter().chain(&after) {
        // Later windows supersede earlier ones; duplicates are idempotent.
        let _ = rc.set_desired(rec.pool, rec.window.0, rec.to_servers);
    }
    let mut ticks = 0;
    while !rc.converged() && ticks < 10 {
        rc.tick(&mut SimActuator::new(&mut sim));
        sim.run_windows(1); // resizes land when the window is simulated
        ticks += 1;
    }
    for (pool, state) in rc.states() {
        let actual = sim.fleet().pool(pool).map(|p| p.active_count()).unwrap_or(0);
        println!("  {pool}: {actual} active servers, {state}");
    }
    println!("reconciler: all pools converged in {ticks} tick(s).");
    Ok(())
}
