//! Pre-deployment release gate: methodology steps 3–4.
//!
//! A team ships a fix for a memory leak. Before it reaches production, the
//! offline harness (1) validates that the synthetic workload reproduces the
//! production response curves, then (2) A/B-tests the change under stepped
//! load. In the paper's §III-C war story the fix was real — and hid a
//! latency defect that only appeared at high workload.
//!
//! ```text
//! cargo run --example release_gate
//! ```

use headroom::cluster::regression_lab::RegressionLab;
use headroom::cluster::ServiceModel;
use headroom::core::curves::PoolObservations;
use headroom::core::offline::{analyze_ab, validate_synthetic};
use headroom::prelude::*;
use headroom::workload::stepped::SteppedLoad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Step 3: validate the synthetic workload against production. ----
    let production = FleetScenario::small(11).run_days(1.0)?;
    let pool = production.pools()[0];
    let prod_obs = PoolObservations::collect(production.store(), pool, production.range())?;

    // The offline pool runs the same build under the synthetic ramp; here
    // we replay it through a second simulated pool.
    let offline = FleetScenario::small(12).run_days(1.0)?;
    let off_obs = PoolObservations::collect(offline.store(), offline.pools()[0], offline.range())?;
    let validation = validate_synthetic(&prod_obs, &off_obs, 0.05)?;
    println!(
        "synthetic workload: cpu slope err {:.1}%, latency curve err {:.1}% -> {}",
        validation.cpu_slope_error * 100.0,
        validation.latency_curve_error * 100.0,
        if validation.equivalent {
            "EQUIVALENT, offline results are trustworthy"
        } else {
            "NOT equivalent"
        }
    );

    // ---- Step 4: A/B the change under stepped load. ----
    let current_build = ServiceModel::paper_pool_b().with_leak(2.5);
    let candidate_build = ServiceModel::paper_pool_b().with_latency_quadratic_scaled(8.0);
    let ramp = SteppedLoad::new(60.0, 70.0, 9, 15);
    let lab = RegressionLab::new(current_build, candidate_build, ramp, 99);
    let report = analyze_ab(&lab.run(), 40.0)?;

    println!("\nper-step latency (baseline vs change):");
    for step in &report.steps {
        println!(
            "  {:>4.0} rps/server: {:>6.2} ms -> {:>6.2} ms ({:+.2}{})",
            step.rps_per_server,
            step.baseline_ms,
            step.candidate_ms,
            step.delta_ms,
            if step.significant { ", significant" } else { "" }
        );
    }
    println!(
        "\nleak: {:+.1} MB/step -> {:+.1} MB/step (fixed: {})",
        report.baseline_leak_mb_per_step,
        report.candidate_leak_mb_per_step,
        report.leak_fixed()
    );
    println!("capacity at the 40 ms SLO: {:+.1}%", report.capacity_change * 100.0);
    println!(
        "verdict: {}",
        if report.should_block() {
            "BLOCK DEPLOYMENT (latency regression at high load)"
        } else {
            "ship it"
        }
    );
    Ok(())
}
