//! Binding-constraint discovery: a disk-bound pool next to a CPU-bound
//! pool, planned live. The planner fits one workload→utilization line per
//! resource (CPU, disk queue, paging, network) plus the latency quadratic,
//! and each assessment reports which constraint actually binds — §II-A1's
//! "limiting resource" loop, done online instead of assumed.
//!
//! ```text
//! cargo run --release --example multi_resource
//! ```

use headroom::cluster::catalog::MicroserviceKind;
use headroom::cluster::sim::{RecordingPolicy, SimConfig, Simulation};
use headroom::cluster::topology::FleetBuilder;
use headroom::core::report::render_table;
use headroom::online::planner::{OnlinePlanner, OnlinePlannerConfig};
use headroom::prelude::*;
use headroom::workload::events::EventScript;
use headroom::workload::resource_profile::ResourceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two one-datacenter pools on identical CPU and latency curves; only
    // the per-request resource shape differs. Pool 0 serves cheap CPU-heavy
    // requests; pool 1 queues disk I/O on every request (think log ingest).
    let cpu_spec = {
        let mut s = MicroserviceKind::B.spec();
        s.model = s.model.with_resource_profile(&ResourceProfile::cpu_only());
        s
    };
    let disk_spec = {
        let mut s = MicroserviceKind::B.spec();
        s.kind = MicroserviceKind::C;
        s.model = s.model.with_resource_profile(&ResourceProfile::disk_heavy());
        s
    };
    let fleet = FleetBuilder::new(7)
        .datacenters(1)
        .without_failures()
        .without_incidents()
        .deploy_with_spec(&cpu_spec, 10, 380.0)?
        .deploy_with_spec(&disk_spec, 10, 380.0)?
        .build();

    let mut sim = Simulation::new(
        fleet,
        EventScript::empty(),
        SimConfig {
            seed: 7,
            recording: RecordingPolicy::SnapshotOnly,
            track_availability: false,
            ..SimConfig::default()
        },
    );

    // A tight disk-queue guardrail: pool 1's queue (≈0.02 per RPS) crosses
    // 8.5 around 400 RPS/server, well before CPU or the latency SLO.
    let qos = QosRequirement::latency(32.5).with_cpu_ceiling(90.0).with_disk_queue_limit(8.5);
    let windows = 720u64; // one simulated day
    let config = OnlinePlannerConfig {
        window_capacity: windows as usize,
        min_fit_windows: 180,
        ..OnlinePlannerConfig::default()
    };
    let mut planner = OnlinePlanner::new(config, qos);

    println!("streaming {windows} windows through the planner...");
    for _ in 0..windows {
        let snap = sim.step_snapshot_partitioned();
        planner.observe_partitioned(&snap);
        planner.drain_recommendations();
    }

    let mut rows = Vec::new();
    for sizing in planner.sizings() {
        let a = &planner.assessments()[&sizing.pool];
        rows.push(vec![
            sizing.pool.to_string(),
            a.binding.to_string(),
            sizing.current_servers.to_string(),
            sizing.min_servers.to_string(),
            a.band.to_string(),
        ]);
    }
    println!("{}", render_table(&["Pool", "Binding constraint", "Current", "Min", "Band"], &rows));
    println!(
        "same workload, same CPU curve — but pool 1's sizing keys off its disk queue, \
         discovered from the counters alone."
    );
    Ok(())
}
