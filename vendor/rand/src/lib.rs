//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate provides exactly the surface the
//! simulator and statistics code use:
//!
//! - [`rngs::StdRng`] — a seedable xoshiro256++ generator;
//! - [`SeedableRng::seed_from_u64`] — deterministic construction;
//! - [`RngExt::random_range`] — uniform sampling from half-open and
//!   inclusive ranges of floats and integers.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, across platforms, so simulations are reproducible.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.random_range(0..10usize);
//! assert!(i < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling on top of [`RngCore`] (the subset of the real crate's
/// `Rng` extension trait this workspace uses).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    ///
    /// Supported ranges: `Range`/`RangeInclusive` over `f64`, `f32`, and
    /// the common integer types.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = rng.next_f64();
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start.max(f64::from_bits(self.end.to_bits() - 1))
        } else {
            v.max(self.start)
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        (start + (end - start) * rng.next_f64()).clamp(start, end)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * rng.next_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v.max(self.start)
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and statistically strong enough for simulation and
    /// property-testing workloads. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix cannot emit
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(2.5..7.5);
            assert!((2.5..7.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        // Inclusive ranges reach the upper bound.
        let mut top = false;
        for _ in 0..200 {
            if rng.random_range(0..=3u64) == 3 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
