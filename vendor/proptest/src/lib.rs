//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate reimplements the subset of proptest the
//! test suites use: value [`strategy::Strategy`]s over ranges, tuples and
//! collections, the [`proptest!`] harness macro, and the `prop_assert*`
//! family. Cases are generated deterministically (seeded per test name), so
//! failures are reproducible; shrinking is not implemented — the failing
//! arguments are printed as generated.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! // Inside a #[cfg(test)] module this expands to a deterministic #[test]:
//! proptest! {
//!     #[allow(dead_code)]
//!     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! // Strategies can also be sampled directly:
//! use proptest::strategy::Strategy;
//! let mut rng = proptest::test_runner::rng_for("demo");
//! let v = prop::collection::vec(0.0f64..1.0, 2..5).sample(&mut rng);
//! assert!(v.len() >= 2 && v.len() < 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-harness plumbing: configuration, case errors, deterministic RNGs.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Harness configuration (the subset of proptest's knobs we honour).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 48 keeps simulator-heavy
            // properties fast while still exercising the input space.
            ProptestConfig { cases: 48 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assumption (`prop_assume!`) was not met; the case is skipped.
        Reject,
        /// A property assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic per-property generator: the seed is an FNV-1a hash of
    /// the property name, so every run generates the same cases.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support for types with a canonical strategy.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy for `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random_range(0u64..2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);
}

/// The canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeMap;

    /// Strategy generating `Vec`s with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec size range must be non-empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy generating `BTreeMap`s.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: std::ops::Range<usize>,
    }

    /// A `BTreeMap` with up to `size` entries (duplicate keys collapse, as
    /// in real proptest the size is a target, not a guarantee).
    pub fn btree_map<K, V>(key: K, value: V, size: std::ops::Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        assert!(size.start < size.end, "map size range must be non-empty");
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.start..self.size.end);
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` alias used for `prop::collection::vec` et al.
    pub use crate as prop;
}

/// Defines deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that samples its arguments `cases` times and runs the body. An optional
/// leading `#![proptest_config(...)]` overrides the configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let rendered_args = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                match run() {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {case}: {msg}\n  with {}",
                            stringify!($name),
                            rendered_args,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}: {:?} != {:?}: {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}: both {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_stay_in_bounds(x in 10.0f64..20.0, n in 3usize..7) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        fn vec_respects_size(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        fn maps_generate(m in prop::collection::btree_map(0u64..100, 0.0f64..1.0, 1..10)) {
            prop_assert!(m.len() < 10);
        }

        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        fn tuples_and_any(pair in (0u32..4, prop::collection::vec(any::<bool>(), 1..4))) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        fn config_override_runs(x in 0i64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("seed");
        let mut b = crate::test_runner::rng_for("seed");
        let s = 0.0f64..1.0;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::rng_for("map");
        let doubled = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..20 {
            assert_eq!(doubled.sample(&mut rng) % 2, 0);
        }
    }
}
