//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace is built in hermetic environments with no access to
//! crates.io, so this vendored crate implements the `criterion_group!` /
//! `criterion_main!` API surface the benches use, backed by a plain
//! wall-clock harness:
//!
//! - every benchmark is warmed up, then timed over a fixed number of
//!   samples (bounded by a per-benchmark time budget);
//! - the mean, minimum, and maximum per-iteration times are printed in a
//!   `name  time: [min mean max]` line, similar to criterion's output;
//! - passing `--test` on the command line (as `cargo test --benches` does)
//!   runs each benchmark exactly once, as a smoke test.
//!
//! Statistical analysis, HTML reports and baseline comparisons are out of
//! scope; the numbers are honest wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works as in the real crate.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }

    /// An id carrying only a parameter (the group name provides context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Drives the timing loop for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Warmup + measured samples within a time budget.
    Measure { sample_count: usize, budget: Duration },
    /// One iteration only (`--test`).
    Smoke,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.samples.push(Duration::ZERO);
            }
            Mode::Measure { sample_count, budget } => {
                // Warmup: a few unrecorded iterations, capped at 20% of the
                // budget, so caches and branch predictors settle.
                let warm_start = Instant::now();
                for _ in 0..3 {
                    black_box(routine());
                    if warm_start.elapsed() > budget / 5 {
                        break;
                    }
                }
                let run_start = Instant::now();
                for _ in 0..sample_count {
                    let t = Instant::now();
                    black_box(routine());
                    self.samples.push(t.elapsed());
                    if run_start.elapsed() > budget {
                        break;
                    }
                }
            }
        }
    }
}

fn print_report(name: &str, samples: &[Duration], smoke: bool) {
    if smoke {
        println!("{name:<50} ok (smoke)");
        return;
    }
    if samples.is_empty() {
        println!("{name:<50} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 30, measurement_time: Duration::from_secs(2), smoke }
    }
}

impl Criterion {
    /// Overrides the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the per-benchmark time budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) {
        let mode = if self.smoke {
            Mode::Smoke
        } else {
            Mode::Measure { sample_count: self.sample_size, budget: self.measurement_time }
        };
        let mut b = Bencher { mode, samples: Vec::new() };
        f(&mut b);
        print_report(name, &b.samples, self.smoke);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.name, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A named collection of related benchmarks (`group/benchmark` naming).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    fn effective(&self) -> Criterion {
        Criterion {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement_time: self.measurement_time.unwrap_or(self.criterion.measurement_time),
            smoke: self.criterion.smoke,
        }
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.effective().run_one(&full, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.effective().run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c =
            Criterion { sample_size: 5, measurement_time: Duration::from_millis(50), smoke: false };
        let mut calls = 0u32;
        c.bench_function("tiny", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 5, "warmup + samples ran: {calls}");
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(50),
            smoke: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &_n| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls >= 2);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c =
            Criterion { sample_size: 100, measurement_time: Duration::from_secs(10), smoke: true };
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fit", 720).to_string(), "fit/720");
        assert_eq!(BenchmarkId::from_parameter(99).to_string(), "99");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
