//! Property-based tests of system-level invariants across crates.

use headroom::cluster::catalog::MicroserviceKind;
use headroom::cluster::pool::LoadBalancer;
use headroom::cluster::sim::{SimConfig, Simulation};
use headroom::cluster::topology::FleetBuilder;
use headroom::prelude::*;
use headroom::telemetry::counter::CounterKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The load balancer conserves total workload for any demand and size.
    #[test]
    fn lb_conserves_demand(total in 0.0f64..1e6, n in 1usize..500, seed in 0u64..1000) {
        let lb = LoadBalancer::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = lb.distribute(total, n, &mut rng);
        prop_assert_eq!(shares.len(), n);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6 * (1.0 + total));
        prop_assert!(shares.iter().all(|&s| s >= 0.0));
    }

    /// Simulation is bit-reproducible for any seed.
    #[test]
    fn simulation_deterministic(seed in 0u64..100) {
        let run = || {
            let fleet = FleetBuilder::new(seed)
                .datacenters(2)
                .deploy_service(MicroserviceKind::G, 6)
                .expect("dcs")
                .build();
            let mut sim = Simulation::new(fleet, Default::default(), SimConfig {
                seed,
                ..SimConfig::default()
            });
            sim.run_windows(40);
            let pool = sim.fleet().pools()[0].id;
            sim.store().pool_mean_series(
                pool,
                CounterKind::CpuPercent,
                WindowRange::new(
                    headroom::telemetry::time::WindowIndex(0),
                    headroom::telemetry::time::WindowIndex(40),
                ),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Removing more servers never lowers forecast CPU or (on the rising
    /// branch) latency.
    #[test]
    fn reduction_forecasts_are_monotone(frac_a in 0.0f64..0.4, frac_b in 0.4f64..0.8) {
        let obs = PoolObservations {
            pool: headroom::telemetry::ids::PoolId(0),
            windows: (0..100).map(headroom::telemetry::time::WindowIndex).collect(),
            rps_per_server: (0..100).map(|i| 380.0 + i as f64).collect(),
            cpu_pct: (0..100).map(|i| 0.028 * (380.0 + i as f64) + 1.37).collect(),
            latency_p95_ms: (0..100)
                .map(|i| {
                    let r = 380.0 + i as f64;
                    4.028e-5 * r * r - 0.031 * r + 36.68
                })
                .collect(),
            active_servers: vec![10.0; 100],
        };
        let f = CapacityForecaster::fit(&obs).unwrap();
        let small = f.after_reduction(400.0, frac_a).unwrap();
        let large = f.after_reduction(400.0, frac_b).unwrap();
        prop_assert!(large.cpu_pct >= small.cpu_pct);
        prop_assert!(large.rps_per_server > small.rps_per_server);
    }

    /// Pool availability always lands in [0, 1] and pools never gain
    /// servers spontaneously.
    #[test]
    fn availability_bounded(seed in 0u64..30, days in 1u64..3) {
        let outcome = FleetScenario::paper_scale(seed, 0.02)
            .run_days(days as f64)
            .unwrap();
        for (_, _, a) in outcome.availability().daily_records() {
            prop_assert!((0.0..=1.0).contains(&a));
        }
        for pool in outcome.fleet().pools() {
            prop_assert!(pool.active_count() <= pool.size());
        }
    }
}
