//! Cross-crate integration tests: the full measure→optimize pipeline over
//! the public facade API.

use headroom::cluster::catalog::MicroserviceKind;
use headroom::core::pipeline::CapacityPlanner;
use headroom::prelude::*;

fn qos_for_small(pool: headroom::telemetry::ids::PoolId) -> QosRequirement {
    QosRequirement::small_fleet(pool)
}

#[test]
fn pipeline_finds_headroom_in_small_fleet() {
    let outcome = FleetScenario::small(1).run_days(2.0).unwrap();
    let planner = CapacityPlanner { availability_days: 2, ..CapacityPlanner::new() };
    let report =
        planner.plan(outcome.store(), outcome.availability(), outcome.range(), qos_for_small);
    assert!(report.pools.len() >= 5, "skipped: {:?}", report.skipped);
    let savings = report.savings();
    // The small fleet is built with ~1/3 headroom on B and D.
    assert!(savings.efficiency_savings() > 0.15, "efficiency {:.2}", savings.efficiency_savings());
    assert!(savings.total_savings() < 0.6);
}

#[test]
fn planning_is_deterministic() {
    let run = || {
        let outcome = FleetScenario::small(9).run_days(1.0).unwrap();
        let planner = CapacityPlanner { availability_days: 1, ..CapacityPlanner::new() };
        planner
            .plan(outcome.store(), outcome.availability(), outcome.range(), qos_for_small)
            .savings()
            .rows
            .iter()
            .map(|r| (r.pool, r.min_servers, r.efficiency_savings))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_produce_different_telemetry_same_conclusions() {
    let savings_for = |seed| {
        let outcome = FleetScenario::small(seed).run_days(1.0).unwrap();
        let planner = CapacityPlanner { availability_days: 1, ..CapacityPlanner::new() };
        let report =
            planner.plan(outcome.store(), outcome.availability(), outcome.range(), qos_for_small);
        report.savings().efficiency_savings()
    };
    let a = savings_for(100);
    let b = savings_for(200);
    assert_ne!(a, b, "different seeds should differ in detail");
    assert!((a - b).abs() < 0.08, "but agree on the conclusion: {a:.3} vs {b:.3}");
}

#[test]
fn forecaster_round_trip_on_simulated_pool() {
    // Fit on days 0-1, verify on day 2 (out of sample).
    let scenario = FleetScenario::single_service(MicroserviceKind::D, 1, 40, 17);
    let outcome = scenario.run_days(3.0).unwrap();
    let pool = outcome.pools()[0];
    let fit_range = WindowRange::days(2.0);
    let all = PoolObservations::collect(outcome.store(), pool, outcome.range()).unwrap();
    let train = PoolObservations::collect(outcome.store(), pool, fit_range).unwrap();
    let forecaster = CapacityForecaster::fit(&train).unwrap();
    // Every day-3 observation within 10% of the forecast.
    let mut checked = 0;
    for i in 0..all.len() {
        if all.windows[i].0 < 1440 {
            continue;
        }
        let predicted = forecaster.at_rps(all.rps_per_server[i]);
        let cpu_err = (predicted.cpu_pct - all.cpu_pct[i]).abs() / all.cpu_pct[i].max(1.0);
        assert!(cpu_err < 0.10, "cpu err {cpu_err:.3} at window {i}");
        checked += 1;
    }
    assert!(checked > 600);
}

#[test]
fn grouping_splits_only_heterogeneous_pools() {
    use headroom::core::grouping::split_pool_groups;
    // Homogeneous pool: one group.
    let homogeneous =
        FleetScenario::single_service(MicroserviceKind::B, 1, 30, 3).run_days(1.0).unwrap();
    let split = split_pool_groups(homogeneous.store(), homogeneous.pools()[0], homogeneous.range())
        .unwrap();
    assert_eq!(split.groups.len(), 1);

    // Mixed-hardware pool: two groups.
    let mixed = FleetScenario::single_service(MicroserviceKind::I, 1, 30, 3).run_days(1.0).unwrap();
    let split = split_pool_groups(mixed.store(), mixed.pools()[0], mixed.range()).unwrap();
    assert_eq!(split.groups.len(), 2);
}

#[test]
fn availability_flows_into_online_savings() {
    use headroom::core::optimizer::optimize_pool;
    // Service C runs Heavy maintenance (~90.5%): online savings ≈ 7-8%.
    let spec = MicroserviceKind::C.spec();
    let outcome = FleetScenario::paper_scale(31, 0.1).run_days(2.0).unwrap();
    let pool = outcome.fleet().pools_of_service(MicroserviceKind::C)[0];
    let qos = QosRequirement::latency(spec.latency_slo_ms).with_cpu_ceiling(60.0);
    let savings =
        optimize_pool(outcome.store(), outcome.availability(), pool, outcome.range(), &qos, 2)
            .unwrap();
    assert!((savings.online_savings - 0.076).abs() < 0.05, "online {:.3}", savings.online_savings);
}
